// Package netdev is the network hardware layer underneath the IP core:
// interfaces with receive/transmit rings, link rate and MTU, and
// point-to-point links wiring interfaces of different routers together.
// It stands in for the ATM interfaces of the paper's testbed (MTU 9180);
// the device driver timestamps every incoming packet exactly as the
// paper's instrumented driver does for the Table 3 measurements.
//
// An interface is backed by one of two substrates. Without a Driver it
// is fully simulated: Inject plays the role of the DMA engine and
// Connect wires two interfaces memory-to-memory. With a Driver attached
// (internal/netio provides the UDP overlay driver) the same rings are
// fed by real OS sockets: the driver's RX goroutine pushes received
// packets into the RX ring via InjectPacket, and Transmit hands egress
// packets to the driver instead of the in-memory peer.
package netdev

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/telemetry"
)

// DefaultMTU matches the paper's ATM configuration.
const DefaultMTU = 9180

// Errors reported by devices.
var (
	ErrRingFull = errors.New("netdev: ring full")
	ErrTooBig   = errors.New("netdev: packet exceeds MTU")
	ErrDown     = errors.New("netdev: interface down")
)

// Driver backs an interface with a real transport (a "wire"). The
// contract mirrors a kernel NIC driver: TransmitWire must never block
// the forwarding worker — when the driver's TX ring is full it counts
// the drop and returns ErrRingFull immediately. RX is push-based: the
// driver delivers received packets into the interface's ring with
// InjectPacket from its own goroutine(s) between Start and Stop.
type Driver interface {
	// Start launches the driver's RX/TX goroutines. Idempotent.
	Start()
	// Stop closes the wire and joins the driver goroutines. Idempotent.
	Stop()
	// TransmitWire queues one egress datagram on the wire. It must not
	// block: ErrRingFull signals backpressure and the caller counts the
	// packet as a TX drop.
	TransmitWire(p *pkt.Packet) error
}

// LinkStats snapshots a wire driver's counters.
type LinkStats struct {
	RxPackets       uint64  `json:"rx_packets"`
	RxBytes         uint64  `json:"rx_bytes"`
	RxDropRing      uint64  `json:"rx_drop_ring"`      // RX ring full at delivery
	RxDropTooBig    uint64  `json:"rx_drop_too_big"`   // datagram exceeded the MTU
	RxDropMalformed uint64  `json:"rx_drop_malformed"` // sum of the bad-path and bad-key arms
	RxDropBadPath   uint64  `json:"rx_drop_bad_path"`  // path-trace encapsulation failed to decode
	RxDropBadKey    uint64  `json:"rx_drop_bad_key"`   // flow-key extraction failed
	RxErrTransient  uint64  `json:"rx_err_transient"`  // transient socket read errors (skipped, not fatal)
	TxPackets       uint64  `json:"tx_packets"`
	TxBytes         uint64  `json:"tx_bytes"`
	TxDropRing      uint64  `json:"tx_drop_ring"` // TX ring full at enqueue
	TxErrors        uint64  `json:"tx_errors"`    // socket write failures
	Batches         uint64  `json:"rx_batches"`   // RX wakeups (one batched drain each)
	AvgBatch        float64 `json:"rx_avg_batch"` // mean packets per RX batch
	TxBatches       uint64  `json:"tx_batches"`   // TX wakeups (one batched drain each)
	AvgTxBatch      float64 `json:"tx_avg_batch"` // mean packets per TX drain
}

// LinkInfo describes a wire-backed interface for operator tooling (the
// "pmgr links" payload).
type LinkInfo struct {
	Iface   int32     `json:"iface"`
	Name    string    `json:"name"`
	Kind    string    `json:"kind"`
	Local   string    `json:"local"`
	Peer    string    `json:"peer"`
	Running bool      `json:"running"`
	Stats   LinkStats `json:"stats"`
}

// LinkReporter is implemented by drivers that can describe their link.
type LinkReporter interface {
	LinkInfo() LinkInfo
}

// Stats counts per-interface packet events. The drop totals are broken
// down by reason so overruns are distinguishable from policy drops.
type Stats struct {
	RxPackets uint64
	RxBytes   uint64
	RxDrops   uint64
	TxPackets uint64
	TxBytes   uint64
	TxDrops   uint64

	// RX drop reasons (sum to RxDrops).
	RxDropRing      uint64
	RxDropTooBig    uint64
	RxDropDown      uint64
	RxDropMalformed uint64
	RxDropOverload  uint64 // shed by the forwarding engine (worker queue full)
	// TX drop reasons (sum to TxDrops).
	TxDropRing   uint64
	TxDropTooBig uint64
	TxDropDown   uint64

	// MbufFallback counts receive-buffer allocations made after the
	// mbuf pool was exhausted (more packets in flight than the declared
	// BufDepth — the signature of a release leak upstream). Not a drop:
	// the packet is still delivered, on a heap buffer.
	MbufFallback uint64
}

// ifStats is the live counter set: lock-free atomics so the per-packet
// paths (Inject, InjectPacket, Transmit — including the driver RX
// goroutine racing the forwarding workers) never serialize on a mutex.
type ifStats struct {
	rxPackets atomic.Uint64
	rxBytes   atomic.Uint64
	txPackets atomic.Uint64
	txBytes   atomic.Uint64

	rxDropRing      atomic.Uint64
	rxDropTooBig    atomic.Uint64
	rxDropDown      atomic.Uint64
	rxDropMalformed atomic.Uint64
	rxDropOverload  atomic.Uint64
	txDropRing      atomic.Uint64
	txDropTooBig    atomic.Uint64
	txDropDown      atomic.Uint64

	mbufFallback atomic.Uint64
}

// ifTel is the optional registered metric set (SetTelemetry): the same
// events as ifStats, exported on the Prometheus endpoint with an iface
// label. Every cell is nil until a registry is attached; record calls
// are nil-receiver no-ops.
type ifTel struct {
	rxPackets *telemetry.Counter
	rxBytes   *telemetry.Counter
	txPackets *telemetry.Counter
	txBytes   *telemetry.Counter

	rxDropRing      *telemetry.Counter
	rxDropTooBig    *telemetry.Counter
	rxDropDown      *telemetry.Counter
	rxDropMalformed *telemetry.Counter
	rxDropOverload  *telemetry.Counter
	txDropRing      *telemetry.Counter
	txDropTooBig    *telemetry.Counter
	txDropDown      *telemetry.Counter

	mbufFallback *telemetry.Counter
}

// Interface is one network interface. Packets received from the
// attached link (or wire driver) are queued on the RX ring for the
// router core to drain; packets the core transmits go out on the TX
// path and are delivered to the peer interface or the wire.
type Interface struct {
	Index int32
	Name  string
	MTU   int

	mu     sync.Mutex
	up     bool
	rx     chan *pkt.Packet
	peer   *Interface
	driver Driver

	stats ifStats
	tel   ifTel

	// The receive buffer pool: Inject copies wire bytes into a pool
	// buffer, exactly like a DMA engine filling preallocated mbufs, and
	// stamps the packet's Owner so whoever retires it (transmit, drop,
	// shed) returns the buffer with ReleaseMbuf. mbufFree is the LIFO
	// free list of recycled MTU-sized buffers; mbufMade counts buffers
	// created so far, capped at BufDepth (RX ring plus any reserve
	// declared with ReserveMbufs: with a worker pool, a packet can sit
	// in a worker's ingress queue long after it left the RX ring, so
	// the reserve must cover the total worker queue depth). When the
	// pool is exhausted — more packets in flight than the declared
	// depth, the signature of a missing release upstream — nextMbuf
	// degrades to a counted heap allocation instead of corrupting a
	// buffer still in flight.
	mbufFree  [][]byte
	mbufMade  int
	mbufExtra int

	// Addr is the interface's own address (used by daemons and for
	// locally destined traffic).
	Addr pkt.Addr

	// clock supplies receive timestamps; overridable for tests.
	clock func() time.Time
}

// Config parameterizes NewInterface.
type Config struct {
	Name   string
	MTU    int // defaults to DefaultMTU
	RxRing int // defaults to 512 descriptors
	Addr   pkt.Addr
	Clock  func() time.Time
}

// NewInterface builds an administratively-up interface.
func NewInterface(index int32, cfg Config) *Interface {
	if cfg.MTU == 0 {
		cfg.MTU = DefaultMTU
	}
	if cfg.RxRing == 0 {
		cfg.RxRing = 512
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("sim%d", index)
	}
	return &Interface{
		Index: index, Name: name, MTU: cfg.MTU,
		up: true, rx: make(chan *pkt.Packet, cfg.RxRing),
		Addr: cfg.Addr, clock: cfg.Clock,
	}
}

// SetUp raises or lowers the interface.
func (i *Interface) SetUp(up bool) {
	i.mu.Lock()
	i.up = up
	i.mu.Unlock()
}

// Up reports administrative state.
func (i *Interface) Up() bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.up
}

// AttachDriver backs the interface with a wire driver. The driver is
// not started; the router facade starts and stops attached drivers from
// Start/Stop so sockets open and close with the forwarding loop.
func (i *Interface) AttachDriver(d Driver) {
	i.mu.Lock()
	i.driver = d
	i.mu.Unlock()
}

// Driver returns the attached wire driver, or nil.
func (i *Interface) Driver() Driver {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.driver
}

// SetTelemetry registers the interface's counters on a metrics registry
// (Prometheus exposition). Nil-safe; call before traffic for complete
// counts. Events recorded before attachment are visible in Stats but
// not in the registry.
func (i *Interface) SetTelemetry(t *telemetry.Telemetry) {
	if t == nil {
		return
	}
	l := telemetry.Label{Key: "iface", Value: i.Name}
	dir := func(d string) telemetry.Label { return telemetry.Label{Key: "dir", Value: d} }
	reason := func(why string) telemetry.Label { return telemetry.Label{Key: "reason", Value: why} }
	i.tel = ifTel{
		rxPackets: t.Counter("eisr_netdev_packets_total", "packets per interface and direction", l, dir("rx")),
		txPackets: t.Counter("eisr_netdev_packets_total", "packets per interface and direction", l, dir("tx")),
		rxBytes:   t.Counter("eisr_netdev_bytes_total", "bytes per interface and direction", l, dir("rx")),
		txBytes:   t.Counter("eisr_netdev_bytes_total", "bytes per interface and direction", l, dir("tx")),

		rxDropRing:      t.Counter("eisr_netdev_drops_total", "interface drops by direction and reason", l, dir("rx"), reason("ring-full")),
		rxDropTooBig:    t.Counter("eisr_netdev_drops_total", "interface drops by direction and reason", l, dir("rx"), reason("too-big")),
		rxDropDown:      t.Counter("eisr_netdev_drops_total", "interface drops by direction and reason", l, dir("rx"), reason("down")),
		rxDropMalformed: t.Counter("eisr_netdev_drops_total", "interface drops by direction and reason", l, dir("rx"), reason("malformed")),
		rxDropOverload:  t.Counter("eisr_netdev_drops_total", "interface drops by direction and reason", l, dir("rx"), reason("overload")),
		txDropRing:      t.Counter("eisr_netdev_drops_total", "interface drops by direction and reason", l, dir("tx"), reason("ring-full")),
		txDropTooBig:    t.Counter("eisr_netdev_drops_total", "interface drops by direction and reason", l, dir("tx"), reason("too-big")),
		txDropDown:      t.Counter("eisr_netdev_drops_total", "interface drops by direction and reason", l, dir("tx"), reason("down")),

		mbufFallback: t.Counter("eisr_netdev_mbuf_fallback_total", "receive buffers heap-allocated after pool exhaustion", l),
	}
}

// Connect wires two interfaces as a point-to-point link (both ways).
func Connect(a, b *Interface) {
	a.mu.Lock()
	a.peer = b
	a.mu.Unlock()
	b.mu.Lock()
	b.peer = a
	b.mu.Unlock()
}

// Inject delivers raw datagram bytes into the interface's RX ring as if
// they arrived from the wire — the traffic generator's entry point. Like
// a real driver it allocates a packet buffer (the mbuf) and copies the
// wire bytes into it, then parses the headers and timestamps the packet;
// the caller's slice is not retained.
func (i *Interface) Inject(data []byte) error {
	i.mu.Lock()
	up := i.up
	i.mu.Unlock()
	if !up {
		i.stats.rxDropDown.Add(1)
		i.tel.rxDropDown.Inc()
		return ErrDown
	}
	if len(data) > i.MTU {
		i.stats.rxDropTooBig.Add(1)
		i.tel.rxDropTooBig.Inc()
		return ErrTooBig
	}
	buf := i.nextMbuf(len(data))
	copy(buf, data)
	p, err := pkt.NewPacket(buf, i.Index)
	if err != nil {
		i.releaseRaw(buf)
		i.stats.rxDropMalformed.Add(1)
		i.tel.rxDropMalformed.Inc()
		return err
	}
	p.Owner = i
	p.Stamp = i.clock()
	select {
	case i.rx <- p:
		i.stats.rxPackets.Add(1)
		i.stats.rxBytes.Add(uint64(len(data)))
		i.tel.rxPackets.Inc()
		i.tel.rxBytes.Add(uint64(len(data)))
		return nil
	default:
		p.ReleaseBuf()
		i.stats.rxDropRing.Add(1)
		i.tel.rxDropRing.Inc()
		return ErrRingFull
	}
}

// ReserveMbufs extends the receive buffer pool beyond the RX ring by
// extra buffers. The core calls this when a worker pool is configured:
// a packet steered to a worker can sit in that worker's ingress queue
// while the RX ring keeps turning over, so the pool must cover ring
// depth plus the total worker queue depth. Control path only; buffers
// allocate lazily so the larger depth costs nothing until used.
func (i *Interface) ReserveMbufs(extra int) {
	if extra < 0 {
		extra = 0
	}
	i.mu.Lock()
	if extra > i.mbufExtra {
		i.mbufExtra = extra
	}
	i.mu.Unlock()
}

// BufDepth reports the receive buffer pool depth: the number of packets
// that can be in flight (RX ring, worker queues, output queues) before
// allocation falls back to the heap. Wire drivers size their own pools
// from it.
func (i *Interface) BufDepth() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return cap(i.rx) + i.mbufExtra + 1
}

// depthLocked is BufDepth with i.mu already held.
func (i *Interface) depthLocked() int { return cap(i.rx) + i.mbufExtra + 1 }

// nextMbuf hands out a receive buffer: recycled from the free list,
// created lazily up to the pool depth, or — pool exhausted — a counted
// heap fallback (graceful degradation, never a recycled-in-flight
// buffer).
func (i *Interface) nextMbuf(n int) []byte {
	i.mu.Lock()
	if l := len(i.mbufFree); l > 0 {
		buf := i.mbufFree[l-1]
		i.mbufFree[l-1] = nil
		i.mbufFree = i.mbufFree[:l-1]
		i.mu.Unlock()
		return buf[:n]
	}
	if i.mbufMade < i.depthLocked() {
		i.mbufMade++
		i.mu.Unlock()
		return make([]byte, i.MTU)[:n]
	}
	i.mu.Unlock()
	i.stats.mbufFallback.Add(1)
	i.tel.mbufFallback.Inc()
	return make([]byte, i.MTU)[:n]
}

// ReleaseMbuf implements pkt.BufOwner: the holder retiring a packet
// returns its receive buffer for recycling. Data that was resliced or
// replaced (decapsulation, plugins swapping in their own buffer) no
// longer reaches back to a full pool buffer and is left to the garbage
// collector; the free list is capped at the pool depth so released
// fallback buffers cannot grow it without bound.
func (i *Interface) ReleaseMbuf(p *pkt.Packet) {
	i.releaseRaw(p.Data)
}

func (i *Interface) releaseRaw(b []byte) {
	if cap(b) < i.MTU {
		return
	}
	b = b[:i.MTU]
	i.mu.Lock()
	if len(i.mbufFree) < i.depthLocked() {
		i.mbufFree = append(i.mbufFree, b)
	}
	i.mu.Unlock()
}

// CountRxOverload records a received packet shed by the forwarding
// engine because its steered worker's ingress queue was full — charged
// against the receiving interface, like any other RX drop.
func (i *Interface) CountRxOverload() {
	i.stats.rxDropOverload.Add(1)
	i.tel.rxDropOverload.Inc()
}

// InjectPacket enqueues an already-built packet — the zero-copy,
// allocation-free receive path used by the benchmark harness and by
// wire drivers delivering from their own buffer pools. The caller must
// have set Data and InIf.
//
//eisr:fastpath
func (i *Interface) InjectPacket(p *pkt.Packet) error {
	p.Stamp = i.clock()
	select {
	case i.rx <- p:
		i.stats.rxPackets.Add(1)
		i.stats.rxBytes.Add(uint64(len(p.Data)))
		i.tel.rxPackets.Inc()
		i.tel.rxBytes.Add(uint64(len(p.Data)))
		return nil
	default:
		i.stats.rxDropRing.Add(1)
		i.tel.rxDropRing.Inc()
		return ErrRingFull
	}
}

// Poll drains one packet from the RX ring without blocking; nil when the
// ring is empty.
//
//eisr:fastpath
func (i *Interface) Poll() *pkt.Packet {
	select {
	case p := <-i.rx:
		return p
	default:
		return nil
	}
}

// Recv blocks until a packet arrives or the done channel closes.
func (i *Interface) Recv(done <-chan struct{}) *pkt.Packet {
	select {
	case p := <-i.rx:
		return p
	case <-done:
		return nil
	}
}

// RxLen reports the RX ring occupancy.
func (i *Interface) RxLen() int { return len(i.rx) }

// Transmit sends a packet out this interface: it is accounted and then
// handed to the wire driver if one is attached, else delivered into the
// connected peer's RX ring. Without a driver or peer the packet is
// counted and discarded (a sink, as in the benchmark harness where the
// ATM card loops to the measurement host). A driver that reports
// backpressure (ErrRingFull) turns into a counted TX drop — the
// forwarding worker is never blocked on the wire.
//
// Transmit consumes the packet's receive buffer on every arm — wire,
// peer, sink, and the drop paths alike — returning it to its pool
// before returning. This is safe because no arm retains p.Data past
// the call: drivers copy into their own wire buffers synchronously
// (the TransmitWire contract) and the in-memory peer path copies into
// the peer's mbuf pool below.
func (i *Interface) Transmit(p *pkt.Packet) error {
	defer p.ReleaseBuf()
	i.mu.Lock()
	up, peer, driver := i.up, i.peer, i.driver
	i.mu.Unlock()
	if !up {
		i.stats.txDropDown.Add(1)
		i.tel.txDropDown.Inc()
		return ErrDown
	}
	if len(p.Data) > i.MTU {
		i.stats.txDropTooBig.Add(1)
		i.tel.txDropTooBig.Inc()
		return ErrTooBig
	}
	if driver != nil {
		if err := driver.TransmitWire(p); err != nil {
			i.stats.txDropRing.Add(1)
			i.tel.txDropRing.Inc()
			return err
		}
		i.stats.txPackets.Add(1)
		i.stats.txBytes.Add(uint64(len(p.Data)))
		i.tel.txPackets.Inc()
		i.tel.txBytes.Add(uint64(len(p.Data)))
		return nil
	}
	i.stats.txPackets.Add(1)
	i.stats.txBytes.Add(uint64(len(p.Data)))
	i.tel.txPackets.Inc()
	i.tel.txBytes.Add(uint64(len(p.Data)))
	if peer != nil {
		// Copy into the peer's own mbuf pool, like a wire would: the
		// sender's buffer recycles the moment Transmit returns, so the
		// peer must not alias it.
		buf := peer.nextMbuf(len(p.Data))
		copy(buf, p.Data)
		q := &pkt.Packet{Data: buf, InIf: peer.Index, OutIf: -1, TOS: p.TOS, Path: p.Path, Owner: peer}
		// The trace context crosses the in-memory link like it crosses
		// the wire: router-local accumulation state does not.
		q.Path.LocalGates, q.Path.StampedHere = 0, false
		if k, err := pkt.ExtractKey(q.Data, peer.Index); err == nil {
			q.Key, q.KeyValid = k, true
		}
		q.Stamp = peer.clock()
		select {
		case peer.rx <- q:
			peer.stats.rxPackets.Add(1)
			peer.stats.rxBytes.Add(uint64(len(q.Data)))
			peer.tel.rxPackets.Inc()
			peer.tel.rxBytes.Add(uint64(len(q.Data)))
		default:
			q.ReleaseBuf()
			peer.stats.rxDropRing.Add(1)
			peer.tel.rxDropRing.Inc()
		}
	}
	return nil
}

// Stats snapshots the interface counters.
func (i *Interface) Stats() Stats {
	s := Stats{
		RxPackets: i.stats.rxPackets.Load(),
		RxBytes:   i.stats.rxBytes.Load(),
		TxPackets: i.stats.txPackets.Load(),
		TxBytes:   i.stats.txBytes.Load(),

		RxDropRing:      i.stats.rxDropRing.Load(),
		RxDropTooBig:    i.stats.rxDropTooBig.Load(),
		RxDropDown:      i.stats.rxDropDown.Load(),
		RxDropMalformed: i.stats.rxDropMalformed.Load(),
		RxDropOverload:  i.stats.rxDropOverload.Load(),
		TxDropRing:      i.stats.txDropRing.Load(),
		TxDropTooBig:    i.stats.txDropTooBig.Load(),
		TxDropDown:      i.stats.txDropDown.Load(),

		MbufFallback: i.stats.mbufFallback.Load(),
	}
	s.RxDrops = s.RxDropRing + s.RxDropTooBig + s.RxDropDown + s.RxDropMalformed + s.RxDropOverload
	s.TxDrops = s.TxDropRing + s.TxDropTooBig + s.TxDropDown
	return s
}
