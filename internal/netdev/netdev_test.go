package netdev

import (
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/pkt"
)

func buildUDP(t *testing.T, n int) []byte {
	t.Helper()
	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("10.0.0.2"),
		SrcPort: 1, DstPort: 2, Payload: make([]byte, n),
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestInjectPoll(t *testing.T) {
	i := NewInterface(0, Config{RxRing: 4})
	if err := i.Inject(buildUDP(t, 100)); err != nil {
		t.Fatal(err)
	}
	p := i.Poll()
	if p == nil {
		t.Fatal("Poll returned nil")
	}
	if p.InIf != 0 || !p.KeyValid || p.Stamp.IsZero() {
		t.Errorf("packet metadata: %+v", p)
	}
	if i.Poll() != nil {
		t.Error("ring should be empty")
	}
	s := i.Stats()
	if s.RxPackets != 1 || s.RxBytes == 0 {
		t.Errorf("stats: %+v", s)
	}
}

func TestRingOverflow(t *testing.T) {
	i := NewInterface(0, Config{RxRing: 2})
	data := buildUDP(t, 10)
	if err := i.Inject(data); err != nil {
		t.Fatal(err)
	}
	if err := i.Inject(data); err != nil {
		t.Fatal(err)
	}
	if err := i.Inject(data); err != ErrRingFull {
		t.Errorf("overflow error = %v", err)
	}
	if s := i.Stats(); s.RxDrops != 1 {
		t.Errorf("drops = %d", s.RxDrops)
	}
}

func TestMTUEnforced(t *testing.T) {
	i := NewInterface(0, Config{MTU: 128})
	if err := i.Inject(buildUDP(t, 200)); err != ErrTooBig {
		t.Errorf("oversize inject error = %v", err)
	}
	j := NewInterface(1, Config{MTU: 128})
	p := &pkt.Packet{Data: buildUDP(t, 200)}
	if err := j.Transmit(p); err != ErrTooBig {
		t.Errorf("oversize transmit error = %v", err)
	}
}

func TestInterfaceDown(t *testing.T) {
	i := NewInterface(0, Config{})
	i.SetUp(false)
	if i.Up() {
		t.Error("interface should be down")
	}
	if err := i.Inject(buildUDP(t, 10)); err != ErrDown {
		t.Errorf("inject on down if = %v", err)
	}
	if err := i.Transmit(&pkt.Packet{Data: buildUDP(t, 10)}); err != ErrDown {
		t.Errorf("transmit on down if = %v", err)
	}
}

func TestConnectDelivers(t *testing.T) {
	a := NewInterface(0, Config{})
	b := NewInterface(1, Config{})
	Connect(a, b)
	p := &pkt.Packet{Data: buildUDP(t, 50)}
	if err := a.Transmit(p); err != nil {
		t.Fatal(err)
	}
	got := b.Poll()
	if got == nil {
		t.Fatal("peer did not receive")
	}
	if got.InIf != 1 {
		t.Errorf("peer InIf = %d", got.InIf)
	}
	if !got.KeyValid || got.Key.Proto != pkt.ProtoUDP {
		t.Errorf("peer key: %+v", got.Key)
	}
	if a.Stats().TxPackets != 1 || b.Stats().RxPackets != 1 {
		t.Error("link accounting wrong")
	}
}

func TestBadPacketDropped(t *testing.T) {
	i := NewInterface(0, Config{})
	if err := i.Inject([]byte{0xff, 0x00}); err == nil {
		t.Error("garbage should fail key extraction")
	}
	if s := i.Stats(); s.RxDrops != 1 {
		t.Errorf("drops = %d", s.RxDrops)
	}
}

func TestRecvBlocksUntilDone(t *testing.T) {
	i := NewInterface(0, Config{})
	done := make(chan struct{})
	res := make(chan *pkt.Packet, 1)
	go func() { res <- i.Recv(done) }()
	close(done)
	select {
	case p := <-res:
		if p != nil {
			t.Errorf("Recv after done = %v", p)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not return after done")
	}
}

func TestCustomClock(t *testing.T) {
	fixed := time.Unix(42, 0)
	i := NewInterface(0, Config{Clock: func() time.Time { return fixed }})
	i.Inject(buildUDP(t, 10))
	if p := i.Poll(); !p.Stamp.Equal(fixed) {
		t.Errorf("stamp = %v", p.Stamp)
	}
}

func TestMbufRingRecycling(t *testing.T) {
	// Inject recycles buffers from a fixed descriptor ring; within the
	// ring depth, earlier packets' data stays intact.
	i := NewInterface(0, Config{RxRing: 4})
	payloads := []string{"aaaa", "bbbb", "cccc", "dddd"}
	var got []*pkt.Packet
	for _, s := range payloads {
		data, _ := pkt.BuildUDP(pkt.UDPSpec{
			Src: pkt.MustParseAddr("1.1.1.1"), Dst: pkt.MustParseAddr("2.2.2.2"),
			SrcPort: 1, DstPort: 2, Payload: []byte(s),
		})
		if err := i.Inject(data); err != nil {
			t.Fatal(err)
		}
		got = append(got, i.Poll())
	}
	for k, p := range got {
		h, _ := pkt.ParseIPv4(p.Data)
		body := p.Data[h.HeaderLen()+pkt.UDPHeaderLen : h.TotalLen]
		if string(body) != payloads[k] {
			t.Errorf("packet %d payload %q want %q", k, body, payloads[k])
		}
	}
	// The caller's slice is not retained: mutating it leaves the
	// injected packet untouched.
	data, _ := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("1.1.1.1"), Dst: pkt.MustParseAddr("2.2.2.2"),
		SrcPort: 9, DstPort: 9, Payload: []byte("orig"),
	})
	if err := i.Inject(data); err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] = 'X'
	p := i.Poll()
	if p.Data[len(p.Data)-1] == 'X' {
		t.Error("driver aliased the caller's buffer")
	}
}
