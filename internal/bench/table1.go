package bench

import (
	"fmt"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/cycles"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// RunTable1 reproduces the worked example of §5.1.1: the four filters of
// Table 1 built into a DAG (Figure 4) and a set of probe triples walked
// through it, including the paper's <128.252.153.1, 128.252.153.7, UDP>
// lookup that terminates at filter 2.
func RunTable1() *Table {
	specs := []string{
		"129.*.*.*, 192.94.233.10, TCP, *, *, *",
		"128.252.153.1, 128.252.153.7, UDP, *, *, *",
		"128.252.153.1, 128.252.153.7, TCP, *, *, *",
		"128.252.153.*, *, UDP, *, *, *",
	}
	a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, pcu.TypeSched)
	inst := benchInstance{}
	recsByID := map[uint64]int{}
	for i, s := range specs {
		rec, err := a.Bind(pcu.TypeSched, aiu.MustParseFilter(s), &inst, nil)
		if err != nil {
			panic(err)
		}
		recsByID[rec.ID] = i + 1
	}
	t := &Table{
		Title:  "Table 1 / Figure 4: the paper's example filter table and DAG lookups",
		Header: []string{"probe <src, dst, proto>", "best matching filter", "accesses"},
	}
	probes := []struct {
		src, dst string
		proto    uint8
	}{
		{"128.252.153.1", "128.252.153.7", pkt.ProtoUDP},
		{"128.252.153.1", "128.252.153.7", pkt.ProtoTCP},
		{"128.252.153.77", "10.0.0.1", pkt.ProtoUDP},
		{"129.132.66.1", "192.94.233.10", pkt.ProtoTCP},
		{"129.132.66.1", "192.94.233.10", pkt.ProtoUDP},
		{"1.2.3.4", "5.6.7.8", pkt.ProtoTCP},
	}
	for _, p := range probes {
		k := pkt.Key{Src: pkt.MustParseAddr(p.src), Dst: pkt.MustParseAddr(p.dst), Proto: p.proto, SrcPort: 1000, DstPort: 2000}
		var c cycles.Counter
		rec := a.ClassifyKey(pcu.TypeSched, k, &c)
		match := "none"
		if rec != nil {
			match = fmt.Sprintf("filter %d  %s", recsByID[rec.ID], rec.Filter)
		}
		t.Add(fmt.Sprintf("<%s, %s, %d>", p.src, p.dst, p.proto), match, fmt.Sprintf("%d", c.Total()))
	}
	t.Note("filter 2 is a proper subset of filter 4 (more specific wins inside the subset); filters 1 and 4 are disjoint")
	return t
}
