package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

// FaultsRow is one measurement of the fault-isolation experiment.
type FaultsRow struct {
	Name        string
	NsPerOp     float64
	AllocsPerOp float64
	HasAllocs   bool // rows measured with alloc accounting
}

// FaultsOptions sizes the experiment.
type FaultsOptions struct {
	Packets int // per-row iteration count (default 200k)
}

// panicInstance panics on every dispatch — the worst case the barrier
// must contain.
type panicInstance struct{}

func (panicInstance) InstanceName() string { return "panic" }
func (panicInstance) HandlePacket(p *pkt.Packet) error {
	panic("bench: injected panic")
}

// measure times fn over n iterations and accounts allocations.
func measure(n int, fn func()) FaultsRow {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return FaultsRow{
		NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
		HasAllocs:   true,
	}
}

// RunFaults measures the panic barrier: the cost of a guarded dispatch
// against a raw one on the no-fault path (the ISSUE's target is zero
// measurable regression and zero allocations), the cost of an actual
// contained panic, and the end-to-end quarantine behavior — a plugin
// that panics on every packet is quarantined after the health
// threshold and traffic keeps flowing on the default path.
func RunFaults(opt FaultsOptions) ([]FaultsRow, int, error) {
	if opt.Packets <= 0 {
		opt.Packets = 200_000
	}
	n := opt.Packets

	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.AddrV4(0x0a000001), Dst: pkt.AddrV4(0x14000001),
		SrcPort: 1000, DstPort: 9, TTL: 255, Payload: make([]byte, 64),
	})
	if err != nil {
		return nil, 0, err
	}
	p, err := pkt.NewPacket(data, 0)
	if err != nil {
		return nil, 0, err
	}

	inst := benchInstance{}
	var rows []FaultsRow

	// Raw dispatch: the pre-isolation call the barrier replaces.
	r0 := measure(n, func() {
		_ = inst.HandlePacket(p) //eisr:allow(lifecycle) barrier-overhead baseline measures the unguarded call
	})
	r0.Name = "dispatch, unguarded (pre-isolation baseline)"
	rows = append(rows, r0)

	// Guarded dispatch, no fault: the steady-state cost every packet
	// pays at every gate.
	guard := pcu.NewGuard(pcu.PolicyDrop, pcu.NewHealth(pcu.HealthConfig{}))
	r1 := measure(n, func() {
		_, _ = guard.Dispatch(pcu.TypeSched, inst, p)
	})
	r1.Name = "dispatch, guarded, no fault"
	rows = append(rows, r1)

	// Guarded dispatch, panic every packet: the contained-fault cost
	// (stack capture dominates). Threshold negative so the instance is
	// never quarantined and every iteration exercises the full path.
	fg := pcu.NewGuard(pcu.PolicyDrop, pcu.NewHealth(pcu.HealthConfig{Threshold: -1}))
	nFault := n / 100
	if nFault < 1000 {
		nFault = 1000
	}
	r2 := measure(nFault, func() {
		_, _ = fg.Dispatch(pcu.TypeSched, panicInstance{}, p)
	})
	r2.Name = "dispatch, guarded, panic every packet"
	rows = append(rows, r2)

	// End to end: a router with a panic-on-every-packet instance bound
	// at the sched gate. The health tracker quarantines it after the
	// default threshold, its filters are unbound, and the remaining
	// packets forward on the default path.
	routes, err := routing.New(bmp.KindBSPL)
	if err != nil {
		return nil, 0, err
	}
	a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, pcu.TypeSched)
	bad := panicInstance{}
	health := pcu.NewHealth(pcu.HealthConfig{
		OnQuarantine: func(qi pcu.Instance, f *pcu.PluginFault) {
			a.UnbindInstance(qi)
		},
	})
	eguard := pcu.NewGuard(pcu.PolicyDrop, health)
	a.SetGuard(eguard)
	if _, err := a.Bind(pcu.TypeSched, aiu.MatchAll(), bad, nil); err != nil {
		return nil, 0, err
	}
	core, err := ipcore.New(ipcore.Config{
		Mode: ipcore.ModePlugin, Gates: []pcu.Type{pcu.TypeSched},
		AIU: a, Routes: routes, Guard: eguard,
		OutQueueLen: n + 4096,
	})
	if err != nil {
		return nil, 0, err
	}
	core.AddInterface(netdev.NewInterface(0, netdev.Config{}))
	core.AddInterface(netdev.NewInterface(1, netdev.Config{}))
	routes.Add(pkt.PrefixFrom(pkt.AddrV4(0), 0), routing.NextHop{IfIndex: 1})

	nE2E := n / 10
	if nE2E < 2000 {
		nE2E = 2000
	}
	now := time.Now()
	start := time.Now()
	for i := 0; i < nE2E; i++ {
		// Rebuild the packet struct each iteration (Forward mutates it).
		// Same five-tuple throughout: the quarantine flushes the cached
		// flow binding, so the next packet re-classifies to the default
		// path — exactly the degradation under test.
		q := &pkt.Packet{Data: data, InIf: 0, OutIf: -1, Stamp: now}
		core.Forward(q)
		for core.TxDrain(1, 64) > 0 {
		}
	}
	r3 := FaultsRow{
		Name:    "end-to-end forward, panicking instance (quarantined)",
		NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(nE2E),
	}
	rows = append(rows, r3)

	st := core.Stats()
	if st.PluginFaults == 0 {
		return nil, 0, fmt.Errorf("bench: expected contained faults, got none (stats %+v)", st)
	}
	if st.Forwarded == 0 {
		return nil, 0, fmt.Errorf("bench: router did not keep forwarding after quarantine (stats %+v)", st)
	}
	return rows, int(st.PluginFaults), nil
}

// FaultsTable renders the experiment.
func FaultsTable(rows []FaultsRow, faults int) *Table {
	t := &Table{
		Title:  "Plugin fault isolation: barrier overhead and quarantine",
		Header: []string{"path", "ns/op", "allocs/op"},
	}
	for _, r := range rows {
		allocs := "-"
		if r.HasAllocs {
			allocs = fmt.Sprintf("%.2f", r.AllocsPerOp)
		}
		t.Add(r.Name, fmt.Sprintf("%.1f", r.NsPerOp), allocs)
	}
	t.Note("no-fault guarded dispatch must add no allocations (recover-free happy path)")
	t.Note("end-to-end row: instance quarantined after the default threshold (%d faults contained), traffic degraded to the default path", faults)
	return t
}
