package bench

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"github.com/routerplugins/eisr"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/netio"
	"github.com/routerplugins/eisr/internal/pkt"
)

// wireMagic marks wire-experiment payloads so stray datagrams on the
// harness sockets are detected rather than miscounted.
const wireMagic = 0xE15EBE7C

// WireOptions parameterizes the wire experiment.
type WireOptions struct {
	// Packets is the number of UDP-encapsulated datagrams to push
	// (default 10_000; `-exp all` uses a smaller smoke size).
	Packets int
	// Window bounds the in-flight packet count (default 256).
	Window int
	// Daemon, when set, drives a live eisrd instead of an in-process
	// topology: the harness sends wire datagrams to this address (the
	// daemon's ingress -link socket) and expects the daemon's egress
	// link to point at SinkBind.
	Daemon string
	// SrcBind is the local address the sender socket binds
	// (default 127.0.0.1:0).
	SrcBind string
	// SinkBind is the local address the sink socket binds — in daemon
	// mode it must match the peer of the daemon's egress link
	// (default 127.0.0.1:0, in-process mode only).
	SinkBind string
	// Workers sizes the in-process routers' worker pools (ignored in
	// daemon mode).
	Workers int
	// Batch caps the in-process routers' per-worker forwarding vector
	// (0 = the engine default; ignored in daemon mode).
	Batch int
}

// WireResult is the wire experiment outcome.
type WireResult struct {
	Packets    int
	Received   int
	Duplicates int
	Elapsed    time.Duration
	Daemon     bool
	// Links snapshots each in-process hop's wire counters (empty in
	// daemon mode; use `pmgr links` there).
	Links []netdev.LinkInfo
}

// Lost reports how many packets never reached the sink.
func (r WireResult) Lost() int { return r.Packets - r.Received }

// RunWire pushes UDP-encapsulated IP packets through a wire topology
// and verifies payload-by-payload delivery at a real UDP sink socket.
// In-process mode assembles two routers joined by a netio UDP link
// (ingress ring → router A with a drr instance at the sched gate →
// wire → router B → wire → sink); daemon mode aims the same traffic at
// a live eisrd's ingress link.
func RunWire(opts WireOptions) (WireResult, error) {
	if opts.Packets <= 0 {
		opts.Packets = 10_000
	}
	if opts.Window <= 0 {
		opts.Window = 256
	}
	if opts.SrcBind == "" {
		opts.SrcBind = "127.0.0.1:0"
	}
	if opts.SinkBind == "" {
		opts.SinkBind = "127.0.0.1:0"
	}

	sinkAddr, err := net.ResolveUDPAddr("udp", opts.SinkBind)
	if err != nil {
		return WireResult{}, fmt.Errorf("wire: sink bind: %w", err)
	}
	sink, err := net.ListenUDP("udp", sinkAddr)
	if err != nil {
		return WireResult{}, fmt.Errorf("wire: sink bind: %w", err)
	}
	defer sink.Close()

	res := WireResult{Packets: opts.Packets, Daemon: opts.Daemon != ""}

	// The ingress: either a live daemon's link socket or an in-process
	// two-router topology whose first hop we inject into directly.
	var inject func(data []byte) error
	var snapshotLinks func() []netdev.LinkInfo
	if opts.Daemon != "" {
		srcAddr, err := net.ResolveUDPAddr("udp", opts.SrcBind)
		if err != nil {
			return res, fmt.Errorf("wire: src bind: %w", err)
		}
		src, err := net.ListenUDP("udp", srcAddr)
		if err != nil {
			return res, fmt.Errorf("wire: src bind: %w", err)
		}
		defer src.Close()
		daemon, err := net.ResolveUDPAddr("udp", opts.Daemon)
		if err != nil {
			return res, fmt.Errorf("wire: daemon address: %w", err)
		}
		inject = func(data []byte) error {
			_, err := src.WriteToUDP(data, daemon)
			return err
		}
	} else {
		a, b, linkA, linkBOut, err := buildWirePair(opts.Workers, opts.Batch)
		if err != nil {
			return res, err
		}
		if err := linkBOut.SetPeer(sink.LocalAddr().String()); err != nil {
			return res, err
		}
		a.Start()
		defer a.Stop()
		b.Start()
		defer b.Stop()
		ingress := a.Interface(0)
		inject = func(data []byte) error {
			for {
				err := ingress.Inject(data)
				if err != netdev.ErrRingFull {
					return err
				}
				time.Sleep(50 * time.Microsecond)
			}
		}
		snapshotLinks = func() []netdev.LinkInfo {
			return []netdev.LinkInfo{linkA.LinkInfo(), linkBOut.LinkInfo()}
		}
	}

	// The sink: verify and count every delivery.
	var received atomic.Int64
	var duplicates atomic.Int64
	seen := make([]atomic.Bool, opts.Packets)
	sinkErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 64<<10)
		for {
			sink.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, _, err := sink.ReadFromUDP(buf)
			if err != nil {
				return
			}
			h, err := pkt.ParseIPv4(buf[:n])
			if err != nil {
				sinkErr <- fmt.Errorf("wire: sink got a non-IP datagram: %v", err)
				return
			}
			body := buf[h.HeaderLen()+pkt.UDPHeaderLen : h.TotalLen]
			if len(body) != 8 || binary.BigEndian.Uint32(body) != wireMagic {
				sinkErr <- fmt.Errorf("wire: sink payload corrupted: % x", body)
				return
			}
			seq := binary.BigEndian.Uint32(body[4:])
			if seq >= uint32(opts.Packets) {
				sinkErr <- fmt.Errorf("wire: out-of-range seq %d", seq)
				return
			}
			if seen[seq].Swap(true) {
				duplicates.Add(1)
				continue
			}
			received.Add(1)
		}
	}()

	start := time.Now()
	for i := 0; i < opts.Packets; i++ {
		for int64(i)-received.Load() >= int64(opts.Window) {
			time.Sleep(50 * time.Microsecond)
		}
		data, err := wireDatagram(uint32(i))
		if err != nil {
			return res, err
		}
		if err := inject(data); err != nil {
			return res, fmt.Errorf("wire: inject %d: %w", i, err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for received.Load() < int64(opts.Packets) && time.Now().Before(deadline) {
		select {
		case err := <-sinkErr:
			return res, err
		default:
		}
		time.Sleep(time.Millisecond)
	}
	res.Elapsed = time.Since(start)
	res.Received = int(received.Load())
	res.Duplicates = int(duplicates.Load())
	if snapshotLinks != nil {
		res.Links = snapshotLinks()
	}
	return res, nil
}

// buildWirePair assembles the in-process topology: router A (ingress
// ring, drr at the sched gate, egress on a UDP link) wired to router B
// (UDP ingress link, UDP egress link whose peer the caller points at
// the sink).
func buildWirePair(workers, batch int) (a, b *eisr.Router, linkA, linkBOut *netio.UDPLink, err error) {
	mk := func() (*eisr.Router, error) {
		r, err := eisr.New(eisr.Options{VerifyChecksums: true, Workers: workers, BatchSize: batch})
		if err != nil {
			return nil, err
		}
		for idx, name := range []string{"lan", "wan"} {
			ifc := netdev.NewInterface(int32(idx), netdev.Config{Name: name, MTU: 1500})
			r.Core.AddInterface(ifc)
		}
		if err := r.AddRoute("0.0.0.0/0 dev 1"); err != nil {
			return nil, err
		}
		return r, nil
	}
	if a, err = mk(); err != nil {
		return nil, nil, nil, nil, err
	}
	if b, err = mk(); err != nil {
		return nil, nil, nil, nil, err
	}
	if err = a.LoadPlugin("drr"); err != nil {
		return nil, nil, nil, nil, err
	}
	inst, err := a.CreateInstance("drr", map[string]string{"iface": "1"})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if err = a.Register("drr", inst, map[string]string{"filter": "*, *, *, *, *, *", "weight": "2"}); err != nil {
		return nil, nil, nil, nil, err
	}
	if linkA, err = a.AttachUDPLink(1, "127.0.0.1:0", ""); err != nil {
		return nil, nil, nil, nil, err
	}
	linkBIn, err := b.AttachUDPLink(0, "127.0.0.1:0", "")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	if linkBOut, err = b.AttachUDPLink(1, "127.0.0.1:0", ""); err != nil {
		return nil, nil, nil, nil, err
	}
	if err = linkA.SetPeer(linkBIn.LocalAddr()); err != nil {
		return nil, nil, nil, nil, err
	}
	return a, b, linkA, linkBOut, nil
}

// wireDatagram builds the IP datagram for one sequence number. A few
// source ports spread the traffic over several flows.
func wireDatagram(seq uint32) ([]byte, error) {
	payload := make([]byte, 8)
	binary.BigEndian.PutUint32(payload, wireMagic)
	binary.BigEndian.PutUint32(payload[4:], seq)
	return pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("20.0.0.2"),
		SrcPort: uint16(1000 + seq%8), DstPort: 9, Payload: payload, TTL: 64,
	})
}

// WireTable renders the wire experiment result.
func WireTable(r WireResult) *Table {
	t := &Table{
		Title:  "Wire: UDP overlay links, end-to-end over real sockets",
		Header: []string{"packets", "received", "lost", "dup", "elapsed", "pkts/s"},
	}
	pps := "-"
	if r.Elapsed > 0 {
		pps = fmtRate(float64(r.Received) / r.Elapsed.Seconds())
	}
	t.Add(fmt.Sprint(r.Packets), fmt.Sprint(r.Received), fmt.Sprint(r.Lost()),
		fmt.Sprint(r.Duplicates), r.Elapsed.Round(time.Millisecond).String(), pps)
	if r.Daemon {
		t.Note("driven against a live eisrd; link counters via `pmgr links`")
	}
	for _, li := range r.Links {
		t.Note("%s (%s %s -> %s): rx %d tx %d drops rx-ring=%d tx-ring=%d errs=%d avg-batch %.1f",
			li.Name, li.Kind, li.Local, li.Peer,
			li.Stats.RxPackets, li.Stats.TxPackets,
			li.Stats.RxDropRing, li.Stats.TxDropRing, li.Stats.TxErrors, li.Stats.AvgBatch)
	}
	return t
}
