package bench

import (
	"fmt"

	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/sched"
)

// DRRShareRow is one flow's share in the link-sharing demo.
type DRRShareRow struct {
	Label       string
	Weight      float64
	ServedBytes uint64
	Share       float64
	FairShare   float64
}

// RunDRRShare reproduces the §6.1 link-sharing demonstration: backlogged
// flows with weights receive bandwidth in proportion to their weights
// ("a weighted form of DRR which assigns weights to queues... extremely
// useful for demonstrations of the link-sharing capabilities").
func RunDRRShare(weights []float64, pktSize, pktsPerFlow int, linkBps float64, seconds float64) []DRRShareRow {
	if weights == nil {
		weights = []float64{1, 2, 4}
	}
	d := sched.NewDRR(1500, pktsPerFlow+1)
	queues := make([]*sched.DRRQueue, len(weights))
	for i, w := range weights {
		queues[i] = d.NewQueue(fmt.Sprintf("flow%d(w=%g)", i, w), w)
		for j := 0; j < pktsPerFlow; j++ {
			d.EnqueueFlow(queues[i], &pkt.Packet{Data: make([]byte, pktSize)})
		}
	}
	sim := sched.NewLinkSim(d, linkBps)
	sim.Run(seconds)
	var total uint64
	minBacklogged := true
	for _, q := range queues {
		total += q.Served
	}
	_ = minBacklogged
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	rows := make([]DRRShareRow, len(queues))
	for i, q := range queues {
		rows[i] = DRRShareRow{
			Label: q.Label, Weight: q.Weight, ServedBytes: q.Served,
			Share:     float64(q.Served) / float64(total),
			FairShare: q.Weight / wsum,
		}
	}
	return rows
}

// DRRShareTable renders the shares.
func DRRShareTable(rows []DRRShareRow) *Table {
	t := &Table{
		Title:  "Weighted DRR link sharing (§6.1 demonstration)",
		Header: []string{"flow", "weight", "served bytes", "measured share", "weight share"},
	}
	for _, r := range rows {
		t.Add(r.Label, fmt.Sprintf("%g", r.Weight), fmt.Sprintf("%d", r.ServedBytes),
			fmt.Sprintf("%.3f", r.Share), fmt.Sprintf("%.3f", r.FairShare))
	}
	t.Note("shape target: measured share tracks weight share for continuously backlogged flows")
	return t
}

// HFSCRow is one class in the decoupling experiment.
type HFSCRow struct {
	Class        string
	Curve        string
	FirstDepart  float64 // seconds
	ServedBytes  uint64
	GoodputShare float64
}

// RunHFSCDecoupling reproduces the H-FSC property the paper adopts it
// for: "the decoupling of delay and bandwidth allocation". Two classes
// with identical long-term rates; one buys a burst segment (m1 >> m2)
// and must see far earlier departures at equal long-term goodput.
func RunHFSCDecoupling(linkBps float64) []HFSCRow {
	h := sched.NewHFSC(linkBps)
	lowDelay := sched.Curve{M1: linkBps * 0.8, D: 0.01, M2: linkBps * 0.2}
	flat := sched.LinearCurve(linkBps * 0.2)
	ls := sched.LinearCurve(linkBps * 0.2)
	fast, _ := h.AddClass("low-delay (m1=0.8C,d=10ms,m2=0.2C)", nil, &lowDelay, &ls, nil, nil)
	slow, _ := h.AddClass("flat (m=0.2C)", nil, &flat, &ls, nil, nil)
	const pktSize = 1000
	for i := 0; i < 2000; i++ {
		h.EnqueueClass(fast, &pkt.Packet{Data: make([]byte, pktSize)}, 0)
		h.EnqueueClass(slow, &pkt.Packet{Data: make([]byte, pktSize)}, 0)
	}
	sim := sched.NewHFSCLinkSim(h, linkBps)
	firstFast, firstSlow := -1.0, -1.0
	for sim.Now < 1.0 {
		bf, bs := fast.Served, slow.Served
		if sim.Step() == nil {
			break
		}
		if fast.Served > bf && firstFast < 0 {
			firstFast = sim.Now
		}
		if slow.Served > bs && firstSlow < 0 {
			firstSlow = sim.Now
		}
	}
	total := float64(fast.Served + slow.Served)
	return []HFSCRow{
		{Class: fast.Name, Curve: "concave", FirstDepart: firstFast, ServedBytes: fast.Served, GoodputShare: float64(fast.Served) / total},
		{Class: slow.Name, Curve: "linear", FirstDepart: firstSlow, ServedBytes: slow.Served, GoodputShare: float64(slow.Served) / total},
	}
}

// HFSCTable renders the decoupling rows.
func HFSCTable(rows []HFSCRow) *Table {
	t := &Table{
		Title:  "H-FSC delay/bandwidth decoupling (§6)",
		Header: []string{"class", "curve", "first departure", "served bytes", "goodput share"},
	}
	for _, r := range rows {
		t.Add(r.Class, r.Curve, fmt.Sprintf("%.2f ms", r.FirstDepart*1000),
			fmt.Sprintf("%d", r.ServedBytes), fmt.Sprintf("%.3f", r.GoodputShare))
	}
	t.Note("shape target: the concave class departs first by roughly m1/m2 while long-term goodput shares stay ~equal")
	return t
}

// SchedOverheadRow is one scheduler's per-packet cost through the
// enqueue+dequeue path.
type SchedOverheadRow struct {
	Scheduler string
	NsPerPkt  float64
	Paper     string
}

// RunSchedOverhead contrasts per-packet scheduling cost: FIFO vs plugin
// DRR vs ALTQ DRR vs H-FSC (the §7.3 discussion: DRR ≈ +20% over best
// effort; [27] reports 6.8–10.3 µs for H-FSC queueing on a P200).
func RunSchedOverhead(pkts int) []SchedOverheadRow {
	if pkts <= 0 {
		pkts = 200_000
	}
	mk := func() []*pkt.Packet {
		out := make([]*pkt.Packet, 64)
		for i := range out {
			data, _ := pkt.BuildUDP(pkt.UDPSpec{
				Src: pkt.AddrV4(0x0a000001 + uint32(i%3)), Dst: pkt.AddrV4(0x14000001),
				SrcPort: uint16(7000 + i%3), DstPort: 9, Payload: make([]byte, 1000),
			})
			p, _ := pkt.NewPacket(data, 0)
			out[i] = p
		}
		return out
	}
	var rows []SchedOverheadRow

	fifo := sched.NewFIFO(128)
	rows = append(rows, SchedOverheadRow{"FIFO (best effort)", timeSched(pkts, mk(), fifo.Enqueue, fifo.Dequeue), "baseline"})

	drr := sched.NewDRR(1500, 128)
	dq := [3]*sched.DRRQueue{}
	for i := range dq {
		dq[i] = drr.NewQueue(fmt.Sprintf("f%d", i), 1)
	}
	i := 0
	rows = append(rows, SchedOverheadRow{"DRR plugin (per-flow queues)", timeSched(pkts, mk(), func(p *pkt.Packet) error {
		q := dq[i%3]
		i++
		return drr.EnqueueFlow(q, p)
	}, drr.Dequeue), "~+20% on the full path"})

	altq := sched.NewALTQDRR(256, 1500)
	rows = append(rows, SchedOverheadRow{"ALTQ DRR (hashes per packet)", timeSched(pkts, mk(), altq.Enqueue, altq.Dequeue), "similar to plugin DRR"})

	h := sched.NewHFSC(125e6)
	rt := sched.LinearCurve(40e6)
	cls := [3]*sched.Class{}
	for j := range cls {
		cls[j], _ = h.AddClass(fmt.Sprintf("c%d", j), nil, &rt, &rt, nil, nil)
	}
	now := 0.0
	j := 0
	rows = append(rows, SchedOverheadRow{"H-FSC (3 leaf classes)", timeSched(pkts, mk(), func(p *pkt.Packet) error {
		c := cls[j%3]
		j++
		now += 1e-5
		return h.EnqueueClass(c, p, now)
	}, func() *pkt.Packet { return h.DequeueAt(now) }), "6.8-10.3us queueing on a P200 [27]"})
	return rows
}

func timeSched(pkts int, pool []*pkt.Packet, enq func(*pkt.Packet) error, deq func() *pkt.Packet) float64 {
	t := nowNs()
	for i := 0; i < pkts; i++ {
		p := pool[i%len(pool)]
		p.FIX = nil
		enq(p)
		deq()
	}
	return float64(nowNs()-t) / float64(pkts)
}

// SchedOverheadTable renders the comparison.
func SchedOverheadTable(rows []SchedOverheadRow) *Table {
	t := &Table{
		Title:  "Per-packet scheduler cost (enqueue+dequeue)",
		Header: []string{"scheduler", "ns/pkt", "paper context"},
	}
	for _, r := range rows {
		t.Add(r.Scheduler, fmt.Sprintf("%.0f", r.NsPerPkt), r.Paper)
	}
	return t
}
