package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/cycles"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/trafficgen"
)

// DAGScalePoint is one (filters, classifier) measurement.
type DAGScalePoint struct {
	Filters   int
	DAGNs     float64
	DAGMem    float64
	LinearNs  float64
	LinearMem float64
	DAGNodes  int
}

// RunDAGScale contrasts the DAG classifier with the O(n) linear scan the
// paper attributes to prior filter implementations ("most of these
// existing techniques require O(n) time... our solution is more or less
// independent of the number of filters"). It sweeps the filter count and
// reports per-lookup time and memory accesses for both.
func RunDAGScale(seed int64, counts []int) []DAGScalePoint {
	if counts == nil {
		counts = []int{16, 64, 256, 1024, 4096, 16384}
	}
	rng := rand.New(rand.NewSource(seed))
	var out []DAGScalePoint
	for _, n := range counts {
		filters := trafficgen.FlowLikeFilters(rng, n, false)
		a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, pcu.TypeSched)
		inst := benchInstance{}
		var recs []*aiu.FilterRecord
		for _, f := range filters {
			rec, _ := a.Bind(pcu.TypeSched, f, &inst, nil)
			recs = append(recs, rec)
		}
		keys := trafficgen.RandomKeys(rng, 4096, false)
		// Warm (build the DAG outside the timed region).
		a.ClassifyKey(pcu.TypeSched, keys[0], nil)

		var dagMem uint64
		start := time.Now()
		for _, k := range keys {
			var c cycles.Counter
			a.ClassifyKey(pcu.TypeSched, k, &c)
			dagMem += c.Total()
		}
		dagNs := float64(time.Since(start).Nanoseconds()) / float64(len(keys))

		var linMem uint64
		start = time.Now()
		for _, k := range keys {
			linMem += uint64(naiveScan(recs, k))
		}
		linNs := float64(time.Since(start).Nanoseconds()) / float64(len(keys))

		out = append(out, DAGScalePoint{
			Filters: n,
			DAGNs:   dagNs, DAGMem: float64(dagMem) / float64(len(keys)),
			LinearNs: linNs, LinearMem: float64(linMem) / float64(len(keys)),
			DAGNodes: a.DAGNodes(pcu.TypeSched),
		})
	}
	return out
}

// naiveScan is the O(n) matcher the paper contrasts against; it returns
// the number of records examined (= memory accesses in the paper's
// accounting of linear classifiers). It must scan the full list because
// a later filter may be more specific.
func naiveScan(recs []*aiu.FilterRecord, k pkt.Key) int {
	var best *aiu.FilterRecord
	for _, r := range recs {
		if r.Filter.Matches(k) {
			if best == nil {
				best = r
			}
		}
	}
	_ = best
	return len(recs)
}

// DAGScaleTable renders the sweep.
func DAGScaleTable(points []DAGScalePoint) *Table {
	t := &Table{
		Title:  "Classifier scaling: DAG vs linear scan (§5.1.2 claim)",
		Header: []string{"filters", "DAG ns/lookup", "DAG accesses", "linear ns/lookup", "linear accesses", "DAG nodes"},
	}
	for _, p := range points {
		t.Add(fmt.Sprintf("%d", p.Filters),
			fmt.Sprintf("%.0f", p.DAGNs), fmt.Sprintf("%.1f", p.DAGMem),
			fmt.Sprintf("%.0f", p.LinearNs), fmt.Sprintf("%.0f", p.LinearMem),
			fmt.Sprintf("%d", p.DAGNodes))
	}
	t.Note("shape target: DAG columns flat in the filter count, linear columns growing linearly — O(f) vs O(n)")
	return t
}
