package bench

import (
	"os"
	"testing"

	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// TestBenchSmokeFaultBarrier is the acceptance gate for the fault
// barrier's happy path: a guarded dispatch that does not fault must not
// allocate — the barrier is recover-free unless a panic is actually in
// flight. Alloc assertions always run; the relative-overhead assertion
// is timing-sensitive and only runs under EISR_BENCH_SMOKE=1 (the
// make bench-smoke entry point).
func TestBenchSmokeFaultBarrier(t *testing.T) {
	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.AddrV4(0x0a000001), Dst: pkt.AddrV4(0x14000001),
		SrcPort: 1000, DstPort: 9, TTL: 255, Payload: make([]byte, 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pkt.NewPacket(data, 0)
	if err != nil {
		t.Fatal(err)
	}

	inst := benchInstance{}
	guard := pcu.NewGuard(pcu.PolicyDrop, pcu.NewHealth(pcu.HealthConfig{}))
	guarded := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = guard.Dispatch(pcu.TypeSched, inst, p)
		}
	})
	if allocs := guarded.AllocsPerOp(); allocs != 0 {
		t.Errorf("guarded no-fault dispatch allocates %d allocs/op, want 0", allocs)
	}

	// A nil guard (fault isolation without health tracking) must also
	// stay allocation-free.
	var nilGuard *pcu.Guard
	bare := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = nilGuard.Dispatch(pcu.TypeSched, inst, p)
		}
	})
	if allocs := bare.AllocsPerOp(); allocs != 0 {
		t.Errorf("nil-guard dispatch allocates %d allocs/op, want 0", allocs)
	}

	if os.Getenv("EISR_BENCH_SMOKE") == "" {
		t.Log("EISR_BENCH_SMOKE unset; skipping timing assertion")
		return
	}
	raw := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = inst.HandlePacket(p) //eisr:allow(lifecycle) smoke baseline times the unguarded call
		}
	})
	// The barrier adds one deferred closure and a couple of branches.
	// Allow generous headroom (50ns absolute) so the gate catches a
	// regression to a recover-per-dispatch implementation, not scheduler
	// jitter.
	if delta := guarded.NsPerOp() - raw.NsPerOp(); delta > 50 {
		t.Errorf("guarded dispatch overhead %dns/op over raw (raw=%dns guarded=%dns), want <= 50ns",
			delta, raw.NsPerOp(), guarded.NsPerOp())
	}
}

// TestBenchSmokeFaultedDispatchContained checks the contained-panic
// path end to end at the unit level: the dispatch returns a fault, the
// process survives, and the error carries the instance identity.
func TestBenchSmokeFaultedDispatchContained(t *testing.T) {
	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.AddrV4(0x0a000001), Dst: pkt.AddrV4(0x14000001),
		SrcPort: 1000, DstPort: 9, TTL: 255, Payload: make([]byte, 64),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pkt.NewPacket(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	guard := pcu.NewGuard(pcu.PolicyDrop, pcu.NewHealth(pcu.HealthConfig{Threshold: -1}))
	for i := 0; i < 100; i++ {
		err, flt := guard.Dispatch(pcu.TypeSched, panicInstance{}, p)
		if flt == nil || err == nil {
			t.Fatalf("iteration %d: panic not converted to fault (err=%v flt=%v)", i, err, flt)
		}
		if flt.Instance != "panic" {
			t.Fatalf("fault attributed to %q, want %q", flt.Instance, "panic")
		}
	}
}
