package bench

import (
	"os"
	"runtime"
	"testing"
)

// The sweep must run correctly at any core count (correctness, not
// speed): every packet is forwarded, rows are well-formed.
func TestRunParallelSmall(t *testing.T) {
	rows, err := RunParallel(ParallelOptions{Flows: 64, PerFlow: 20, Workers: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PPS <= 0 {
			t.Errorf("workers=%d: pps = %f", r.Workers, r.PPS)
		}
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %f", rows[0].Speedup)
	}
	if s := ParallelTable(rows).String(); s == "" {
		t.Error("empty table")
	}
}

// Scaling guard for the parallel engine: with 4 cores available, 4
// workers must deliver at least 2x the single-worker cache-hit
// throughput (the acceptance target is 2.5x; the smoke threshold
// leaves headroom for loaded CI machines). Run via `make bench-smoke`.
func TestBenchSmokeParallelSpeedup(t *testing.T) {
	if os.Getenv("EISR_BENCH_SMOKE") == "" {
		t.Skip("timing guard; run via make bench-smoke (EISR_BENCH_SMOKE=1)")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need 4 cores for the speedup guard, have %d", runtime.NumCPU())
	}
	rows, err := RunParallel(ParallelOptions{Flows: 1024, PerFlow: 200, Workers: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	four := rows[len(rows)-1]
	t.Logf("1 worker: %.0f pps; 4 workers: %.0f pps (%.2fx)",
		rows[0].PPS, four.PPS, four.Speedup)
	if four.Speedup < 2.0 {
		t.Fatalf("4-worker speedup %.2fx, want >= 2.0x", four.Speedup)
	}
}
