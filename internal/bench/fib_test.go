package bench

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/routing"
)

// TestFIBZeroAllocLookup is the always-on guard: a snapshot lookup on a
// loaded table allocates nothing, for every incremental engine.
func TestFIBZeroAllocLookup(t *testing.T) {
	for _, kind := range []string{"patricia", "bspl"} {
		rng := rand.New(rand.NewSource(7))
		routes := genRoutes(rng, 10_000)
		probes := fibProbes(rng, routes, 4096)
		tbl, err := routing.New(bmp.Kind(kind))
		if err != nil {
			t.Fatal(err)
		}
		tbl.ApplyBatch(routes, nil)
		i := 0
		allocs := testing.AllocsPerRun(2048, func() {
			tbl.Lookup(probes[i%len(probes)], nil)
			i++
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per lookup, want 0", kind, allocs)
		}
	}
}

// TestFIBSweepSmall keeps the sweep itself under tier-1 coverage at a
// size where it runs in well under a second.
func TestFIBSweepSmall(t *testing.T) {
	rows, err := RunFIB(FIBOptions{Sizes: []int{2000}, UpdateOps: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.LookupNS <= 0 || r.IncUpdateNS <= 0 || r.Rebuild <= 0 {
			t.Errorf("%s/%d: degenerate row %+v", r.Kind, r.Size, r)
		}
		if r.AllocsPerLookup > fibAllocNoise {
			t.Errorf("%s/%d: %.4f allocs per lookup, want 0", r.Kind, r.Size, r.AllocsPerLookup)
		}
	}
	t.Logf("\n%s", FIBTable(rows))
}

// fibAllocNoise tolerates stray background runtime allocations in the
// sweep's whole-process MemStats delta; the exact-zero guarantee on the
// lookup path itself is TestFIBZeroAllocLookup's AllocsPerRun guard.
const fibAllocNoise = 0.002

// TestFIBChurnSmall drives the live-wire churn topology at a tier-1
// friendly size and requires perfect delivery: route churn must never
// cost packets.
func TestFIBChurnSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("wire topology; skipped in -short")
	}
	res, err := RunFIBChurn(FIBChurnOptions{
		Routes: 2000, Updates: 400, BatchOps: 50, Packets: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost() != 0 {
		t.Fatalf("lost %d of %d packets under churn", res.Lost(), res.Packets)
	}
	if res.Batches == 0 || res.ConvergeMax == 0 {
		t.Fatalf("churn did not run: %+v", res)
	}
	t.Logf("\n%s", FIBChurnTable(res))
}

// TestBenchSmokeFIBScale is the bench-smoke guard (EISR_BENCH_SMOKE=1):
// at a million prefixes lookups stay allocation-free, and at 100k a
// single-route incremental update is at least 10x cheaper than the full
// rebuild it replaces.
func TestBenchSmokeFIBScale(t *testing.T) {
	if os.Getenv("EISR_BENCH_SMOKE") == "" {
		t.Skip("set EISR_BENCH_SMOKE=1 to run")
	}
	rows, err := RunFIB(FIBOptions{Sizes: []int{100_000, 1_000_000}, UpdateOps: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FIBTable(rows))
	for _, r := range rows {
		if r.AllocsPerLookup > fibAllocNoise {
			t.Errorf("%s/%d: %.4f allocs per lookup, want 0", r.Kind, r.Size, r.AllocsPerLookup)
		}
		if r.Size == 100_000 && r.Ratio < 10 {
			t.Errorf("%s/%d: incremental update only %.1fx cheaper than rebuild, want >= 10x",
				r.Kind, r.Size, r.Ratio)
		}
	}
}

// TestBenchSmokeFIBChurn is the churn smoke (EISR_BENCH_SMOKE=1): 100k
// prefixes, 10k updates under forwarding load, zero unexplained drops,
// and bounded convergence on every batch.
func TestBenchSmokeFIBChurn(t *testing.T) {
	if os.Getenv("EISR_BENCH_SMOKE") == "" {
		t.Skip("set EISR_BENCH_SMOKE=1 to run")
	}
	res, err := RunFIBChurn(FIBChurnOptions{
		Routes: 100_000, Updates: 10_000, Packets: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FIBChurnTable(res))
	if res.Lost() != 0 {
		t.Fatalf("lost %d of %d packets under churn", res.Lost(), res.Packets)
	}
	if res.Batches == 0 {
		t.Fatal("churn applied no batches")
	}
	if res.ConvergeMax > 500*time.Millisecond {
		t.Errorf("slowest batch converged in %v, want < 500ms", res.ConvergeMax)
	}
}
