package bench

import (
	"strings"
	"testing"
)

// These tests run scaled-down versions of every experiment and assert
// the paper's *shape* claims hold — they are the executable form of
// EXPERIMENTS.md.

func TestTable1Demo(t *testing.T) {
	out := RunTable1().String()
	for _, want := range []string{"filter 2", "filter 3", "filter 4", "filter 1", "none"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	counts := []int{16, 2000}
	v4 := RunTable2(1, counts, false)
	v6 := RunTable2(1, counts, true)
	for _, r := range v4 {
		if total := r.WorstMem + r.WorstFn; total > uint64(r.PaperMem+r.PaperFn) {
			t.Errorf("v4 %d filters: worst %d exceeds paper bound %d", r.Filters, total, r.PaperMem+r.PaperFn)
		}
	}
	for _, r := range v6 {
		if total := r.WorstMem + r.WorstFn; total > uint64(r.PaperMem+r.PaperFn) {
			t.Errorf("v6 %d filters: worst %d exceeds paper bound %d", r.Filters, total, r.PaperMem+r.PaperFn)
		}
	}
	// Independence: the worst case at 2000 filters must not exceed the
	// bound and must be within a small constant of the 16-filter case.
	if v4[1].WorstMem > v4[0].WorstMem+8 {
		t.Errorf("v4 access count grows with filters: %d -> %d", v4[0].WorstMem, v4[1].WorstMem)
	}
	// Rendering includes the paper's totals.
	out := Table2Breakdown(false).String() + Table2Breakdown(true).String()
	if !strings.Contains(out, "20") || !strings.Contains(out, "24") {
		t.Errorf("breakdown missing paper totals:\n%s", out)
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	rows, err := RunTable3(Table3Options{Reps: 10, PerFlow: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCfg := map[Table3Config]Table3Row{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	// Shape 1: the plugin framework's overhead is bounded (paper: 8%).
	// Timing noise on shared CI hardware allows for slack; the
	// qualitative claim is "well under 2x".
	if rel := byCfg[KernelPlugin].Relative; rel > 1.6 {
		t.Errorf("plugin framework overhead %.2f, expected modest (paper 1.08)", rel)
	}
	// Shape 2: the plugin DRR is in the same class as the monolithic
	// ALTQ DRR (paper: statistically equal).
	altq := byCfg[KernelALTQDRR].AvgPerPkt
	plug := byCfg[KernelPluginDRR].AvgPerPkt
	if float64(plug) > 1.6*float64(altq) {
		t.Errorf("plugin DRR %.0fns far above ALTQ DRR %.0fns", float64(plug), float64(altq))
	}
	// Rendering carries the paper's published cycles.
	out := Table3Table(rows).String()
	for _, want := range []string{"6460", "6970", "8160", "8110"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 3 output missing paper value %s", want)
		}
	}
}

func TestFlowCacheShape(t *testing.T) {
	res, err := RunFlowCache(1, 128, 20000, 0.9, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRate < 0.9 {
		t.Errorf("hit rate %.2f too low for burstiness 0.9", res.HitRate)
	}
	// The miss path does strictly more memory accesses than the hit
	// path (full classification vs hash+chain).
	if res.MissAccesses <= res.HitAccesses {
		t.Errorf("miss accesses %.1f not above hit accesses %.1f", res.MissAccesses, res.HitAccesses)
	}
	if res.HitAccesses > 4 {
		t.Errorf("hit path accesses %.1f; should be a hash probe plus a short chain", res.HitAccesses)
	}
}

func TestDAGScaleShape(t *testing.T) {
	points := RunDAGScale(1, []int{16, 256, 2048})
	// Linear accesses grow linearly (they equal n); DAG accesses stay
	// within the Table 2 bound at every size.
	for _, p := range points {
		if p.LinearMem != float64(p.Filters) {
			t.Errorf("linear accesses %.0f != n %d", p.LinearMem, p.Filters)
		}
		if p.DAGMem > 20 {
			t.Errorf("DAG accesses %.1f above Table 2 bound at n=%d", p.DAGMem, p.Filters)
		}
	}
	first, last := points[0], points[len(points)-1]
	if last.DAGMem > first.DAGMem*4 {
		t.Errorf("DAG accesses scaled with n: %.1f -> %.1f", first.DAGMem, last.DAGMem)
	}
}

func TestGateScaleShape(t *testing.T) {
	points := RunGateScale(6)
	// First-packet accesses grow with the gate count; cached accesses
	// stay flat — §3.2's scalability claim.
	for i := 1; i < len(points); i++ {
		if points[i].FirstPktMem <= points[i-1].FirstPktMem {
			t.Errorf("first-packet accesses not increasing: %v", points)
			break
		}
	}
	for _, p := range points {
		if p.CachedPktMem != points[0].CachedPktMem {
			t.Errorf("cached accesses vary with gates: %v", points)
			break
		}
	}
}

func TestDRRShareShape(t *testing.T) {
	rows := RunDRRShare([]float64{1, 2, 4}, 1000, 5000, 1e6, 3)
	for _, r := range rows {
		if r.Share < r.FairShare*0.9 || r.Share > r.FairShare*1.1 {
			t.Errorf("flow %s share %.3f vs fair %.3f", r.Label, r.Share, r.FairShare)
		}
	}
}

func TestHFSCDecouplingShape(t *testing.T) {
	rows := RunHFSCDecoupling(1e6)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	concave, flat := rows[0], rows[1]
	if concave.FirstDepart >= flat.FirstDepart {
		t.Errorf("concave class departs at %.4f, not before flat %.4f", concave.FirstDepart, flat.FirstDepart)
	}
	if concave.GoodputShare < 0.45 || concave.GoodputShare > 0.55 {
		t.Errorf("long-term shares not equal: %.3f", concave.GoodputShare)
	}
}

func TestAblateCacheShape(t *testing.T) {
	rows := RunAblateCache(1, 128, 20000, 0.9)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	on, off := rows[0], rows[1]
	if off.Accesses <= on.Accesses {
		t.Errorf("cache-off accesses %.1f not above cache-on %.1f", off.Accesses, on.Accesses)
	}
}

func TestAblateBMPShape(t *testing.T) {
	rows := RunAblateBMP(1, 512)
	byKind := map[string]AblateBMPRow{}
	for _, r := range rows {
		byKind[string(r.Kind)] = r
	}
	// Linear inside the DAG still does the most accesses; BSPL and CPE
	// bound their probes.
	if byKind["linear"].Accesses <= byKind["bspl"].Accesses {
		t.Errorf("linear %.1f accesses not above bspl %.1f",
			byKind["linear"].Accesses, byKind["bspl"].Accesses)
	}
	if byKind["bspl"].Accesses > 20 {
		t.Errorf("bspl accesses %.1f above Table 2 bound", byKind["bspl"].Accesses)
	}
}

func TestAblateCollapseShape(t *testing.T) {
	rows := RunAblateCollapse(1)
	off, on := rows[0], rows[1]
	if on.Accesses >= off.Accesses {
		t.Errorf("collapse did not reduce accesses: %.1f vs %.1f", on.Accesses, off.Accesses)
	}
	if on.Nodes >= off.Nodes {
		t.Errorf("collapse did not reduce nodes: %d vs %d", on.Nodes, off.Nodes)
	}
}

func TestSchedOverheadRuns(t *testing.T) {
	rows := RunSchedOverhead(20000)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NsPerPkt <= 0 {
			t.Errorf("%s: non-positive cost", r.Scheduler)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.Add("1", "2")
	tb.Note("n%d", 5)
	out := tb.String()
	for _, want := range []string{"T\n=", "a", "bb", "1", "2", "note: n5"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
