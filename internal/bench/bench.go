// Package bench regenerates the paper's evaluation artifacts: every
// table and figure of §7 plus the in-text measurements, on the simulated
// substrate. Each experiment returns a structured result whose String()
// prints rows in the paper's format, side by side with the published
// numbers where absolute comparison is meaningful (Table 2's memory
// access counts) or with relative overheads where the hardware differs
// (Table 3).
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table renders aligned text tables for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// fmtDur prints a duration in microseconds with two decimals, matching
// the paper's µs reporting.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fus", float64(d.Nanoseconds())/1000)
}

// fmtRate prints packets/second.
func fmtRate(pps float64) string {
	return fmt.Sprintf("%.0f", pps)
}
