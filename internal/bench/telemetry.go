package bench

import (
	"fmt"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/cycles"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/plugins"
	"github.com/routerplugins/eisr/internal/routing"
	"github.com/routerplugins/eisr/internal/telemetry"
	"github.com/routerplugins/eisr/internal/trafficgen"
)

// TelemetryResult reports the DRR workload of Table 3 with every figure
// read back from the telemetry registry rather than ad-hoc benchmark
// counters — the snapshot API is the measurement instrument.
type TelemetryResult struct {
	Packets         uint64
	GateDispatch    []GateDispatch
	CacheHits       uint64
	CacheMisses     uint64
	FirstPackets    uint64
	Accesses        uint64 // classifier memory accesses (charged to misses)
	FnPtrLoads      uint64
	AccessesPerMiss float64
	Forwarded       uint64
	Traced          int
	TraceSkipped    uint64
	Samples         []telemetry.TraceSample
}

// GateDispatch is one gate's dispatch count.
type GateDispatch struct {
	Gate    string
	Packets uint64
}

// RunTelemetry assembles a plugin-mode router with telemetry and packet
// tracing enabled, pushes a multi-flow UDP workload through the DRR
// configuration, and reads everything back through telemetry.Snapshot.
func RunTelemetry(nPackets int) (TelemetryResult, error) {
	if nPackets <= 0 {
		nPackets = 30_000
	}
	routes, err := routing.New(bmp.KindBSPL)
	if err != nil {
		return TelemetryResult{}, err
	}
	routes.Add(pkt.MustParsePrefix("0.0.0.0/0"), routing.NextHop{IfIndex: 1})
	routes.Add(pkt.MustParsePrefix("::/0"), routing.NextHop{IfIndex: 1})

	tel := telemetry.New()
	tel.EnableTrace(1024, 1)

	gates := []pcu.Type{pcu.TypeSched}
	a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, gates...)
	a.SetTelemetry(tel)
	r, err := ipcore.New(ipcore.Config{
		Mode: ipcore.ModePlugin, Gates: gates, AIU: a, Routes: routes,
		VerifyChecksums: true, Tel: tel,
	})
	if err != nil {
		return TelemetryResult{}, err
	}
	r.Counter = &cycles.Counter{}
	in := netdev.NewInterface(0, netdev.Config{})
	out := netdev.NewInterface(1, netdev.Config{})
	r.AddInterface(in)
	r.AddInterface(out)

	null := &plugins.NullInstance{}
	for _, f := range trafficgen.Table3Filters() {
		if _, err := a.Bind(gates[0], f, null, nil); err != nil {
			return TelemetryResult{}, err
		}
	}
	env := &plugins.Env{Router: r, AIU: a, Tel: tel}
	drrPlugin := plugins.NewDRRPlugin(env)
	msg := &pcu.Message{Kind: pcu.MsgCreateInstance, Args: map[string]string{"iface": "1", "quantum": "9180"}}
	if err := drrPlugin.Callback(msg); err != nil {
		return TelemetryResult{}, err
	}
	inst := msg.Reply.(*plugins.DRRInstance)
	if _, err := a.Bind(pcu.TypeSched, aiu.MatchAll(), inst, nil); err != nil {
		return TelemetryResult{}, err
	}

	flows := trafficgen.Table3Flows()
	protos := make([][]byte, len(flows))
	for i, f := range flows {
		d, err := f.Datagram()
		if err != nil {
			return TelemetryResult{}, err
		}
		protos[i] = d
	}
	for i := 0; i < nPackets; i++ {
		if err := in.Inject(protos[i%len(protos)]); err != nil {
			return TelemetryResult{}, err
		}
		r.ProcessOne(in.Poll())
	}

	res := TelemetryResult{Packets: uint64(nPackets)}
	labelValue := func(m telemetry.MetricValue, key string) string {
		for _, l := range m.Labels {
			if l.Key == key {
				return l.Value
			}
		}
		return ""
	}
	for _, m := range tel.Snapshot() {
		switch m.Family {
		case "eisr_gate_dispatch_total":
			res.GateDispatch = append(res.GateDispatch, GateDispatch{Gate: labelValue(m, "gate"), Packets: m.Counter})
		case "eisr_flowcache_total":
			if labelValue(m, "result") == "hit" {
				res.CacheHits = m.Counter
			} else {
				res.CacheMisses = m.Counter
			}
		case "eisr_classifier_first_packet_total":
			res.FirstPackets = m.Counter
		case "eisr_classifier_accesses_total":
			res.Accesses = m.Counter
		case "eisr_classifier_fnptr_loads_total":
			res.FnPtrLoads = m.Counter
		case "eisr_classifier_accesses_per_lookup":
			if m.Hist != nil {
				res.AccessesPerMiss = m.Hist.Mean()
			}
		case "eisr_verdicts_total":
			if labelValue(m, "verdict") == "forwarded" {
				res.Forwarded = m.Counter
			}
		}
	}
	samples := tel.Tracer().Snapshot(4)
	res.Samples = samples
	res.Traced = len(tel.Tracer().Snapshot(nPackets))
	res.TraceSkipped = tel.Tracer().Skipped()
	return res, nil
}

// TelemetryTable renders the result with the P6/233 conversions the
// paper uses: memory accesses x 60 ns, expressed in 233 MHz cycles.
func TelemetryTable(r TelemetryResult) *Table {
	m := cycles.P6233
	t := &Table{
		Title:  "Telemetry (eisrtrace): data path observed through the metrics registry",
		Header: []string{"metric", "value", "paper units (P6/233)"},
	}
	t.Add("packets offered", fmt.Sprintf("%d", r.Packets), "-")
	for _, g := range r.GateDispatch {
		t.Add(fmt.Sprintf("gate %s dispatches", g.Gate), fmt.Sprintf("%d", g.Packets), "-")
	}
	hitRatio := 0.0
	if total := r.CacheHits + r.CacheMisses; total > 0 {
		hitRatio = float64(r.CacheHits) / float64(total)
	}
	t.Add("flow-cache hits / misses", fmt.Sprintf("%d / %d (%.1f%% hit)", r.CacheHits, r.CacheMisses, hitRatio*100), "-")
	t.Add("first-packet classifications", fmt.Sprintf("%d", r.FirstPackets), "-")
	missTime := m.LookupTime(uint64(r.AccessesPerMiss + 0.5))
	t.Add("classifier accesses / miss", fmt.Sprintf("%.1f", r.AccessesPerMiss),
		fmt.Sprintf("%.0f cycles (%.2fus)", m.CyclesOf(missTime), float64(missTime.Nanoseconds())/1000))
	t.Add("classifier accesses total", fmt.Sprintf("%d (+%d fn-ptr loads)", r.Accesses, r.FnPtrLoads),
		fmt.Sprintf("%.0f cycles", m.CyclesOf(m.LookupTime(r.Accesses))))
	t.Add("forwarded (verdict counter)", fmt.Sprintf("%d", r.Forwarded), "-")
	t.Add("packets traced", fmt.Sprintf("%d in ring (%d sampled-out/busy)", r.Traced, r.TraceSkipped), "-")
	for _, s := range r.Samples {
		hops := ""
		for i, h := range s.Hops {
			if i > 0 {
				hops += " > "
			}
			hops += fmt.Sprintf("%s:%s", h.Gate, h.Instance)
		}
		t.Add(fmt.Sprintf("  trace #%d %s", s.Seq, s.Flow),
			fmt.Sprintf("%s hit=%v acc=%d out=%d", hops, s.CacheHit, s.Accesses, s.OutIf), "-")
	}
	t.Note("every figure above is read from telemetry.Snapshot / the trace ring, not from benchmark-local counters")
	t.Note("paper units: memory accesses x 60ns on the 233MHz P6 testbed (Table 2 vocabulary)")
	return t
}
