package bench

import (
	"testing"

	"github.com/routerplugins/eisr/internal/trafficgen"
)

func benchPath(b *testing.B, cfg Table3Config) {
	rig, err := buildRig(cfg, false)
	if err != nil {
		b.Fatal(err)
	}
	flows := trafficgen.Table3Flows()
	protos := make([][]byte, len(flows))
	for i, f := range flows {
		protos[i], _ = f.Datagram()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.inIf.Inject(protos[i%3])
		p := rig.inIf.Poll()
		rig.router.ProcessOne(p)
	}
}

func BenchmarkMonoPath(b *testing.B)      { benchPath(b, KernelBestEffort) }
func BenchmarkPluginPath(b *testing.B)    { benchPath(b, KernelPlugin) }
func BenchmarkALTQDRRPath(b *testing.B)   { benchPath(b, KernelALTQDRR) }
func BenchmarkPluginDRRPath(b *testing.B) { benchPath(b, KernelPluginDRR) }
