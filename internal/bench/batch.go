package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

// BatchRow is one batch-size measurement of the vector forwarding path.
type BatchRow struct {
	Batch   int
	PPS     float64
	Speedup float64 // vs the first (batch=1) row
	WirePPS float64 // end-to-end wire throughput; 0 when the wire leg is off
}

// BatchSweepOptions sizes the experiment.
type BatchSweepOptions struct {
	Sizes       []int // batch sizes to sweep (default 1, 4, 8, 16, 32)
	Flows       int   // distinct five-tuple flows (default 1024)
	PerFlow     int   // packets per flow (default 200)
	Workers     int   // forwarding workers (default 4)
	Wire        bool  // also measure each size end to end over the wire
	WirePackets int   // packets per wire run (default 2000)
}

// RunBatchSweep measures steady-state cache-hit throughput as the
// per-worker forwarding vector grows. The topology and workload are
// RunParallel's — pre-built per-flow wire images, flows primed into the
// table, packets pre-partitioned by the engine's own steering function
// — but the workers forward through per-worker Batchers in chunks of
// the swept size, so the measurement isolates what batching amortizes:
// one COW snapshot load, one flow-table shard lock, and one gate
// dispatch per contiguous run instead of per packet.
//
// With Wire set, each size is also driven end to end through the
// two-router UDP overlay topology (socket costs dominate there; the
// column shows batching does not regress the wire path).
func RunBatchSweep(opt BatchSweepOptions) ([]BatchRow, error) {
	if len(opt.Sizes) == 0 {
		opt.Sizes = []int{1, 4, 8, 16, 32}
	}
	if opt.Flows <= 0 {
		opt.Flows = 1024
	}
	if opt.PerFlow <= 0 {
		opt.PerFlow = 200
	}
	if opt.Workers <= 0 {
		opt.Workers = 4
	}
	if opt.WirePackets <= 0 {
		opt.WirePackets = 2000
	}
	const outIfs = 8

	routes, err := routing.New(bmp.KindBSPL)
	if err != nil {
		return nil, err
	}
	a := aiu.New(aiu.Config{
		BMPKind:     bmp.KindBSPL,
		FlowBuckets: opt.Flows * 4,
		MaxFlows:    opt.Flows * 2,
	}, pcu.TypeSched)
	inst := benchInstance{}
	a.Bind(pcu.TypeSched, aiu.MatchAll(), &inst, nil)

	r, err := ipcore.New(ipcore.Config{
		Mode: ipcore.ModePlugin, Gates: []pcu.Type{pcu.TypeSched},
		AIU: a, Routes: routes,
		OutQueueLen: opt.Flows*opt.PerFlow/outIfs + 4096,
	})
	if err != nil {
		return nil, err
	}
	in := netdev.NewInterface(0, netdev.Config{})
	r.AddInterface(in)
	for i := 0; i < outIfs; i++ {
		idx := int32(100 + i)
		r.AddInterface(netdev.NewInterface(idx, netdev.Config{}))
		routes.Add(pkt.PrefixFrom(pkt.AddrV4(uint32(20+i)<<24), 8), routing.NextHop{IfIndex: idx})
	}

	buf := make([][]byte, opt.Flows)
	for f := 0; f < opt.Flows; f++ {
		data, err := pkt.BuildUDP(pkt.UDPSpec{
			Src:     pkt.AddrV4(0x0a000000 + uint32(f)),
			Dst:     pkt.AddrV4(uint32(20+f%outIfs)<<24 | uint32(f)),
			SrcPort: uint16(1000 + f%60000), DstPort: 9,
			TTL: 255, Payload: make([]byte, 64),
		})
		if err != nil {
			return nil, err
		}
		buf[f] = data
	}

	// Prime every flow so the sweep measures the steady-state hit path.
	now := time.Now()
	for f := 0; f < opt.Flows; f++ {
		p, err := pkt.NewPacket(buf[f], 0)
		if err != nil {
			return nil, err
		}
		p.Stamp = now
		r.Forward(p)
	}
	drain(r, outIfs)

	rows := make([]BatchRow, 0, len(opt.Sizes))
	var base float64
	for _, size := range opt.Sizes {
		parts := make([][]*pkt.Packet, opt.Workers)
		for f := 0; f < opt.Flows; f++ {
			k, err := pkt.ExtractKey(buf[f], 0)
			if err != nil {
				return nil, err
			}
			wi := aiu.SteerWorker(k, opt.Workers)
			for j := 0; j < opt.PerFlow; j++ {
				p := &pkt.Packet{Data: buf[f], Key: k, KeyValid: true, InIf: 0, OutIf: -1, Stamp: now}
				parts[wi] = append(parts[wi], p)
			}
		}

		var wg sync.WaitGroup
		start := time.Now()
		for wi := 0; wi < opt.Workers; wi++ {
			wg.Add(1)
			go func(list []*pkt.Packet) {
				defer wg.Done()
				b := r.NewBatcher(size)
				for off := 0; off < len(list); off += size {
					end := off + size
					if end > len(list) {
						end = len(list)
					}
					b.ForwardBatch(list[off:end])
				}
			}(parts[wi])
		}
		wg.Wait()
		elapsed := time.Since(start)
		drain(r, outIfs)

		total := float64(opt.Flows * opt.PerFlow)
		pps := total / elapsed.Seconds()
		if size == opt.Sizes[0] {
			base = pps
		}
		row := BatchRow{Batch: size, PPS: pps, Speedup: pps / base}
		if opt.Wire {
			wres, err := RunWire(WireOptions{
				Packets: opt.WirePackets, Workers: opt.Workers, Batch: size,
			})
			if err != nil {
				return nil, fmt.Errorf("batch=%d wire leg: %w", size, err)
			}
			if wres.Lost() > 0 {
				return nil, fmt.Errorf("batch=%d wire leg lost %d of %d packets",
					size, wres.Lost(), wres.Packets)
			}
			row.WirePPS = float64(wres.Received) / wres.Elapsed.Seconds()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// BatchTable renders the sweep.
func BatchTable(rows []BatchRow, workers int) *Table {
	wire := false
	for _, row := range rows {
		if row.WirePPS > 0 {
			wire = true
		}
	}
	t := &Table{Title: fmt.Sprintf("Vector forwarding: cache-hit throughput vs batch size (%d workers)", workers)}
	if wire {
		t.Header = []string{"batch", "in-process", "speedup", "wire"}
	} else {
		t.Header = []string{"batch", "in-process", "speedup"}
	}
	for _, row := range rows {
		cols := []string{fmt.Sprintf("%d", row.Batch), fmtRate(row.PPS), fmt.Sprintf("%.2fx", row.Speedup)}
		if wire {
			w := "-"
			if row.WirePPS > 0 {
				w = fmtRate(row.WirePPS)
			}
			cols = append(cols, w)
		}
		t.Add(cols...)
	}
	t.Note("per batch: one routing-state snapshot load, one flow-table lock per shard run, one gate dispatch per contiguous instance run (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0))
	return t
}
