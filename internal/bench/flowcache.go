package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/cycles"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/trafficgen"
)

// FlowCacheResult reproduces the in-text flow-table measurements: the
// paper quotes a 17-cycle hash, a best-case cached IPv6 lookup of
// 1.3 µs, and a miss path dominated by classification.
type FlowCacheResult struct {
	HashNs       float64
	HitNs        float64
	MissNs       float64
	HitAccesses  float64
	MissAccesses float64
	HitRate      float64
	Paper        string
}

// RunFlowCache measures hash cost, cached-hit cost, and miss
// (classification) cost over a bursty multi-flow arrival trace.
func RunFlowCache(seed int64, nFlows, nPackets int, burstiness float64, v6 bool) (FlowCacheResult, error) {
	rng := rand.New(rand.NewSource(seed))
	a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL, MaxFlows: nFlows * 2}, pcu.TypeSched)
	inst := benchInstance{}
	for _, f := range trafficgen.FlowLikeFilters(rng, 1000, v6) {
		a.Bind(pcu.TypeSched, f, &inst, nil)
	}
	a.Bind(pcu.TypeSched, aiu.MatchAll(), &inst, nil)

	keys := trafficgen.RandomKeys(rng, nFlows, v6)
	trace := trafficgen.LocalityTrace(rng, nFlows, nPackets, burstiness)
	// Build the DAG on the control path, as the router does, so the
	// measured misses reflect classification rather than construction.
	a.ClassifyKey(pcu.TypeSched, keys[0], nil)

	// Hash micro-measurement.
	t0 := time.Now()
	var sink uint32
	for i := 0; i < 1_000_000; i++ {
		sink ^= aiu.HashKey(keys[i%len(keys)])
	}
	hashNs := float64(time.Since(t0).Nanoseconds()) / 1e6
	_ = sink

	now := time.Now()
	var hitTime, missTime time.Duration
	var hitMem, missMem uint64
	var hits, misses int
	for _, fi := range trace {
		k := keys[fi]
		p := &pkt.Packet{Key: k, KeyValid: true, InIf: k.InIf, OutIf: -1}
		before := a.FlowTable().Stats()
		var c cycles.Counter
		start := time.Now()
		a.LookupGate(p, pcu.TypeSched, now, &c)
		d := time.Since(start)
		after := a.FlowTable().Stats()
		if after.Misses > before.Misses {
			misses++
			missTime += d
			missMem += c.Total()
		} else {
			hits++
			hitTime += d
			hitMem += c.Total()
		}
	}
	res := FlowCacheResult{
		HashNs:  hashNs,
		HitRate: float64(hits) / float64(hits+misses),
		Paper:   "hash: 17 cycles (~73ns at 233MHz); cached IPv6 lookup 1.3us; miss >> hit",
	}
	if hits > 0 {
		res.HitNs = float64(hitTime.Nanoseconds()) / float64(hits)
		res.HitAccesses = float64(hitMem) / float64(hits)
	}
	if misses > 0 {
		res.MissNs = float64(missTime.Nanoseconds()) / float64(misses)
		res.MissAccesses = float64(missMem) / float64(misses)
	}
	return res, nil
}

// FlowCacheTable renders the result.
func FlowCacheTable(r FlowCacheResult) *Table {
	t := &Table{
		Title:  "Flow cache (in-text, §5.2/§7): hash, hit and miss costs",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Add("five-tuple hash", fmt.Sprintf("%.1f ns", r.HashNs), "17 cycles / ~73 ns @233MHz")
	t.Add("cache-hit lookup", fmt.Sprintf("%.0f ns (%.1f accesses)", r.HitNs, r.HitAccesses), "1.3 us best case (IPv6)")
	t.Add("cache-miss lookup", fmt.Sprintf("%.0f ns (%.1f accesses)", r.MissNs, r.MissAccesses), "full filter lookup per gate")
	t.Add("hit rate", fmt.Sprintf("%.1f%%", r.HitRate*100), "-")
	t.Note("shape target: miss cost and accesses are multiples of the hit cost; the hit path is a hash plus a chain walk")
	return t
}
