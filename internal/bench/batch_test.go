package bench

// Batch sweep guards (satellite of the vector forwarding PR): the sweep
// must be well-formed at any core count, ForwardBatch must not allocate
// per packet on the steady-state hit path (asserted in every `go test`
// — allocation counts are deterministic), and under `make bench-smoke`
// batching must actually pay: batch=8 no slower than batch=1 and
// batch=16 at least 1.3x, on the 4-worker in-process topology.

import (
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

func TestRunBatchSweepSmall(t *testing.T) {
	rows, err := RunBatchSweep(BatchSweepOptions{
		Sizes: []int{1, 8}, Flows: 64, PerFlow: 20, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PPS <= 0 {
			t.Errorf("batch=%d: pps = %f", r.Batch, r.PPS)
		}
	}
	if rows[0].Speedup != 1 {
		t.Errorf("baseline speedup = %f", rows[0].Speedup)
	}
	if s := BatchTable(rows, 2).String(); s == "" {
		t.Error("empty table")
	}
}

// newBatchAllocRig builds a one-gate router with primed flows and a
// reusable packet vector for the alloc guard.
func newBatchAllocRig(tb testing.TB, batch int) (*ipcore.Router, *ipcore.Batcher, []*pkt.Packet) {
	tb.Helper()
	routes, err := routing.New(bmp.KindBSPL)
	if err != nil {
		tb.Fatal(err)
	}
	a := aiu.New(aiu.Config{FlowBuckets: 256, MaxFlows: 128}, pcu.TypeSched)
	inst := benchInstance{}
	a.Bind(pcu.TypeSched, aiu.MatchAll(), &inst, nil)
	r, err := ipcore.New(ipcore.Config{
		Mode: ipcore.ModePlugin, Gates: []pcu.Type{pcu.TypeSched},
		AIU: a, Routes: routes, OutQueueLen: 1 << 16,
	})
	if err != nil {
		tb.Fatal(err)
	}
	r.AddInterface(netdev.NewInterface(0, netdev.Config{}))
	r.AddInterface(netdev.NewInterface(1, netdev.Config{}))
	routes.Add(pkt.MustParsePrefix("0.0.0.0/0"), routing.NextHop{IfIndex: 1})

	now := time.Now()
	ps := make([]*pkt.Packet, batch)
	for i := range ps {
		data, err := pkt.BuildUDP(pkt.UDPSpec{
			Src: pkt.AddrV4(0x0a000000 + uint32(i%8)), Dst: pkt.AddrV4(0x14000001),
			SrcPort: uint16(1000 + i%8), DstPort: 9, TTL: 255, Payload: make([]byte, 32),
		})
		if err != nil {
			tb.Fatal(err)
		}
		k, err := pkt.ExtractKey(data, 0)
		if err != nil {
			tb.Fatal(err)
		}
		ps[i] = &pkt.Packet{Data: data, Key: k, KeyValid: true, InIf: 0, OutIf: -1, Stamp: now}
	}
	b := r.NewBatcher(batch)
	// Prime the flows so the measured runs sit on the cache-hit path.
	b.ForwardBatch(ps)
	for r.TxDrain(1, 1<<16) > 0 {
	}
	return r, b, ps
}

// TestBenchSmokeForwardBatchZeroAlloc is the acceptance guard for the
// vector path: steady-state ForwardBatch allocates nothing per packet.
// Allocation counts are deterministic, so this runs in every `go test`,
// not just under the smoke harness.
func TestBenchSmokeForwardBatchZeroAlloc(t *testing.T) {
	const batch = 32
	r, b, ps := newBatchAllocRig(t, batch)
	n := testing.AllocsPerRun(100, func() {
		for _, p := range ps {
			p.OutIf = -1
		}
		if got := b.ForwardBatch(ps); got != batch {
			t.Fatalf("batch lost packets: %d of %d survived", got, batch)
		}
		for r.TxDrain(1, 1<<16) > 0 {
		}
	})
	if n != 0 {
		t.Fatalf("ForwardBatch allocated %v per %d-packet batch, want 0", n, batch)
	}
}

func BenchmarkForwardBatch(b *testing.B) {
	const batch = 32
	r, fb, ps := newBatchAllocRig(b, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range ps {
			p.OutIf = -1
		}
		fb.ForwardBatch(ps)
		for r.TxDrain(1, 1<<16) > 0 {
		}
	}
}

// TestBenchSmokeBatchSpeedup is the throughput acceptance gate: on the
// 4-worker in-process topology, batch=8 must not be slower than batch=1
// and batch=16 must deliver at least 1.3x. Run via `make bench-smoke`.
func TestBenchSmokeBatchSpeedup(t *testing.T) {
	if os.Getenv("EISR_BENCH_SMOKE") == "" {
		t.Skip("timing guard; run via make bench-smoke (EISR_BENCH_SMOKE=1)")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need 4 cores for the batch speedup guard, have %d", runtime.NumCPU())
	}
	rows, err := RunBatchSweep(BatchSweepOptions{
		Sizes: []int{1, 8, 16}, Flows: 1024, PerFlow: 200, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("batch=%2d: %.0f pps (%.2fx)", r.Batch, r.PPS, r.Speedup)
	}
	if rows[1].Speedup < 1.0 {
		t.Fatalf("batch=8 is slower than batch=1: %.2fx", rows[1].Speedup)
	}
	if rows[2].Speedup < 1.3 {
		t.Fatalf("batch=16 speedup %.2fx, want >= 1.3x", rows[2].Speedup)
	}
}
