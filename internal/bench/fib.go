package bench

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/routerplugins/eisr"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/netio"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

// FIBRow is one (BMP kind, table size) point of the full-table FIB
// sweep.
type FIBRow struct {
	Kind string
	Size int
	// Build is the bulk-load convergence time: one ApplyBatch carrying
	// the entire table, one snapshot publication.
	Build time.Duration
	// LookupNS is the steady-state per-lookup cost against the loaded
	// table (mix of covered and random destinations).
	LookupNS float64
	// AllocsPerLookup must be zero: the data path takes one snapshot
	// load and walks immutable structure.
	AllocsPerLookup float64
	// IncUpdateNS is the mean cost of one single-route mutation batch
	// (withdraw + re-announce pairs) on the full table — the
	// incremental ApplyDelta path for PATRICIA/BSPL.
	IncUpdateNS float64
	// Rebuild is the cost of building the same table from scratch (the
	// path every route flap paid before incremental updates).
	Rebuild time.Duration
	// Ratio is Rebuild per-batch over IncUpdateNS — how much cheaper a
	// single-route change is than the full rebuild it replaces.
	Ratio float64
}

// FIBOptions sizes the FIB sweep.
type FIBOptions struct {
	// Sizes are the table sizes (default 10k, 100k, 1M).
	Sizes []int
	// Kinds are the BMP engines (default the incremental pair:
	// patricia, bspl).
	Kinds []string
	// UpdateOps is how many single-route mutation batches are timed
	// per point (default 200).
	UpdateOps int
	Seed      int64
}

// genRoutes builds n unique prefixes with a BGP-shaped length mix
// (heavy /24s, aggregates from /8 to /22), all next-hopping dev 1.
func genRoutes(rng *rand.Rand, n int) []routing.Route {
	lens := []int{8, 10, 12, 14, 16, 18, 20, 22, 24, 24, 24, 24, 24, 28, 32}
	seen := make(map[pkt.Prefix]struct{}, n)
	out := make([]routing.Route, 0, n)
	for len(out) < n {
		l := lens[rng.Intn(len(lens))]
		p := pkt.PrefixFrom(pkt.AddrV4(rng.Uint32()), l)
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, routing.Route{
			Prefix:  p,
			NextHop: routing.NextHop{IfIndex: 1, Metric: 1 + rng.Intn(4)},
		})
	}
	return out
}

// fibProbes builds the lookup workload: mostly destinations covered by
// the table (route base addresses), the rest random.
func fibProbes(rng *rand.Rand, routes []routing.Route, n int) []pkt.Addr {
	probes := make([]pkt.Addr, n)
	for i := range probes {
		if rng.Intn(10) < 7 {
			probes[i] = routes[rng.Intn(len(routes))].Prefix.Addr
		} else {
			probes[i] = pkt.AddrV4(rng.Uint32())
		}
	}
	return probes
}

// RunFIB sweeps table sizes across the incremental BMP engines,
// measuring bulk-load convergence, steady-state lookup cost (and its
// allocation count), single-route incremental update cost, and the
// full-rebuild cost those updates replace.
func RunFIB(opts FIBOptions) ([]FIBRow, error) {
	sizes := opts.Sizes
	if len(sizes) == 0 {
		sizes = []int{10_000, 100_000, 1_000_000}
	}
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = []string{"patricia", "bspl"}
	}
	updateOps := opts.UpdateOps
	if updateOps <= 0 {
		updateOps = 200
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1998
	}
	var rows []FIBRow
	for _, size := range sizes {
		rng := rand.New(rand.NewSource(seed))
		routes := genRoutes(rng, size)
		probes := fibProbes(rng, routes, 1<<16)
		for _, kind := range kinds {
			row, err := runFIBPoint(kind, routes, probes, updateOps, rng)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func runFIBPoint(kind string, routes []routing.Route, probes []pkt.Addr, updateOps int, rng *rand.Rand) (FIBRow, error) {
	row := FIBRow{Kind: kind, Size: len(routes)}
	tbl, err := routing.New(bmp.Kind(kind))
	if err != nil {
		return row, err
	}

	start := time.Now()
	tbl.ApplyBatch(routes, nil)
	row.Build = time.Since(start)

	// Lookup cost: several passes over the probe set, best pass wins
	// (steady-state, warm caches).
	var sink int32
	best := time.Duration(1<<62 - 1)
	for pass := 0; pass < 3; pass++ {
		t0 := time.Now()
		for _, a := range probes {
			if nh, ok := tbl.Lookup(a, nil); ok {
				sink += nh.IfIndex
			}
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	_ = sink
	row.LookupNS = float64(best.Nanoseconds()) / float64(len(probes))
	row.AllocsPerLookup = measureLookupAllocs(tbl, probes)

	// Incremental update cost: withdraw + re-announce existing routes
	// as single-route batches (table size holds steady; for the
	// incremental engines every batch takes the ApplyDelta path).
	t0 := time.Now()
	for i := 0; i < updateOps; i++ {
		rt := routes[rng.Intn(len(routes))]
		tbl.ApplyBatch(nil, []pkt.Prefix{rt.Prefix})
		tbl.ApplyBatch([]routing.Route{rt}, nil)
	}
	row.IncUpdateNS = float64(time.Since(t0).Nanoseconds()) / float64(2*updateOps)

	// The rebuild every flap used to pay: fresh engine, every insert,
	// every lazy internal primed (mirrors the table's rebuild path).
	t0 = time.Now()
	b, err := bmp.New(bmp.Kind(kind))
	if err != nil {
		return row, err
	}
	for _, rt := range routes {
		b.Insert(rt.Prefix, rt.NextHop)
	}
	for _, rt := range routes {
		b.Lookup(rt.Prefix.Addr, nil)
	}
	row.Rebuild = time.Since(t0)
	if row.IncUpdateNS > 0 {
		row.Ratio = float64(row.Rebuild.Nanoseconds()) / row.IncUpdateNS
	}
	return row, nil
}

// measureLookupAllocs counts heap allocations per lookup over a probe
// pass (runtime.MemStats delta; avoids importing testing outside
// tests). Best of three passes: the delta sees the whole process, so a
// pass can pick up stray background runtime allocations — a clean pass
// proves the lookup path itself allocated nothing.
func measureLookupAllocs(tbl *routing.Table, probes []pkt.Addr) float64 {
	best := -1.0
	for pass := 0; pass < 3; pass++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for _, a := range probes {
			tbl.Lookup(a, nil)
		}
		runtime.ReadMemStats(&m1)
		if got := float64(m1.Mallocs-m0.Mallocs) / float64(len(probes)); best < 0 || got < best {
			best = got
		}
	}
	return best
}

// FIBTable renders the FIB sweep.
func FIBTable(rows []FIBRow) *Table {
	t := &Table{
		Title:  "Full-table FIB: incremental updates vs rebuild",
		Header: []string{"kind", "routes", "bulk-load", "lookup", "allocs/lkup", "inc-update", "rebuild", "rebuild/inc"},
	}
	for _, r := range rows {
		t.Add(r.Kind, fmt.Sprint(r.Size),
			r.Build.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0fns", r.LookupNS),
			fmt.Sprintf("%.2f", r.AllocsPerLookup),
			fmt.Sprintf("%.1fus", r.IncUpdateNS/1e3),
			r.Rebuild.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0fx", r.Ratio))
	}
	t.Note("bulk-load = one ApplyBatch, one snapshot publication; inc-update = one single-route batch (ApplyDelta path)")
	t.Note("rebuild = fresh engine + every insert + priming, the per-flap cost before incremental updates")
	return t
}

// FIBChurnOptions parameterizes forwarding-under-churn.
type FIBChurnOptions struct {
	// Kind is the BMP engine (default bspl).
	Kind string
	// Routes is the FIB size loaded before traffic (default 100k).
	Routes int
	// Updates is the total route mutations applied while the second
	// half of the traffic forwards (default 10k).
	Updates int
	// BatchOps is the mutation batch size (default 100 — one snapshot
	// publication per 100 routes).
	BatchOps int
	// Packets is the wire traffic volume, half before churn starts and
	// half under churn (default 10k).
	Packets int
	// Window bounds in-flight packets (default 256).
	Window int
}

// FIBChurnResult is the forwarding-under-churn outcome.
type FIBChurnResult struct {
	Kind                      string
	Routes, Updates, Batches  int
	Packets, Received, Dup    int
	BaselinePPS, ChurnPPS     float64
	ConvergeMean, ConvergeMax time.Duration
	Elapsed                   time.Duration
}

// Lost reports packets that never reached the sink.
func (r FIBChurnResult) Lost() int { return r.Packets - r.Received }

// RunFIBChurn loads a full-scale FIB into a live two-router wire
// topology, streams verified traffic through it, and applies route
// churn to the ingress router's table while the second half of the
// traffic forwards. It measures the packet rate with and without
// churn, per-batch convergence (apply-to-snapshot-publication, which
// is when the data path sees the change), and end-to-end delivery —
// the experiment behind the claim that route churn is control-path
// work that does not stall lock-free forwarding lookups.
func RunFIBChurn(opts FIBChurnOptions) (FIBChurnResult, error) {
	if opts.Kind == "" {
		opts.Kind = "bspl"
	}
	if opts.Routes <= 0 {
		opts.Routes = 100_000
	}
	if opts.Updates <= 0 {
		opts.Updates = 10_000
	}
	if opts.BatchOps <= 0 {
		opts.BatchOps = 100
	}
	if opts.Packets <= 0 {
		opts.Packets = 10_000
	}
	if opts.Window <= 0 {
		opts.Window = 256
	}
	res := FIBChurnResult{Kind: opts.Kind, Routes: opts.Routes, Updates: opts.Updates, Packets: opts.Packets}

	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return res, fmt.Errorf("fib-churn: sink: %w", err)
	}
	defer sink.Close()

	a, b, err := buildFIBWirePair(opts.Kind, opts.Routes, sink.LocalAddr().String())
	if err != nil {
		return res, err
	}
	a.Start()
	defer a.Stop()
	b.Start()
	defer b.Stop()

	ingress := a.Interface(0)
	inject := func(data []byte) error {
		for {
			err := ingress.Inject(data)
			if err != netdev.ErrRingFull {
				return err
			}
			time.Sleep(50 * time.Microsecond)
		}
	}

	var received, duplicates atomic.Int64
	seen := make([]atomic.Bool, opts.Packets)
	sinkErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 64<<10)
		for {
			sink.SetReadDeadline(time.Now().Add(5 * time.Second))
			n, _, err := sink.ReadFromUDP(buf)
			if err != nil {
				return
			}
			h, err := pkt.ParseIPv4(buf[:n])
			if err != nil {
				sinkErr <- fmt.Errorf("fib-churn: non-IP at sink: %v", err)
				return
			}
			body := buf[h.HeaderLen()+pkt.UDPHeaderLen : h.TotalLen]
			if len(body) != 8 || binary.BigEndian.Uint32(body) != wireMagic {
				sinkErr <- fmt.Errorf("fib-churn: corrupted payload: % x", body)
				return
			}
			seq := binary.BigEndian.Uint32(body[4:])
			if seq >= uint32(opts.Packets) {
				sinkErr <- fmt.Errorf("fib-churn: out-of-range seq %d", seq)
				return
			}
			if seen[seq].Swap(true) {
				duplicates.Add(1)
				continue
			}
			received.Add(1)
		}
	}()

	sendRange := func(from, to int) error {
		for i := from; i < to; i++ {
			for int64(i)-received.Load() >= int64(opts.Window) {
				time.Sleep(50 * time.Microsecond)
			}
			data, err := wireDatagram(uint32(i))
			if err != nil {
				return err
			}
			if err := inject(data); err != nil {
				return fmt.Errorf("fib-churn: inject %d: %w", i, err)
			}
		}
		return nil
	}
	drain := func(target int64) error {
		deadline := time.Now().Add(30 * time.Second)
		for received.Load() < target && time.Now().Before(deadline) {
			select {
			case err := <-sinkErr:
				return err
			default:
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}

	half := opts.Packets / 2
	start := time.Now()

	// Phase 1: quiet table.
	t0 := time.Now()
	if err := sendRange(0, half); err != nil {
		return res, err
	}
	if err := drain(int64(half)); err != nil {
		return res, err
	}
	res.BaselinePPS = float64(half) / time.Since(t0).Seconds()

	// Phase 2: churn. A goroutine withdraws and re-announces slices of
	// the live table in batches while the remaining traffic forwards;
	// every batch's apply-to-publication latency is a convergence
	// sample.
	churnDone := make(chan struct{})
	var convTotal, convMax int64
	var batches int64
	go func() {
		defer close(churnDone)
		rng := rand.New(rand.NewSource(42))
		churn := genRoutes(rng, opts.Updates/2+opts.BatchOps)
		applied := 0
		pos := 0
		for applied < opts.Updates {
			n := opts.BatchOps / 2
			if n < 1 {
				n = 1
			}
			adds := make([]routing.Route, 0, n)
			dels := make([]pkt.Prefix, 0, n)
			for i := 0; i < n; i++ {
				rt := churn[(pos+i)%len(churn)]
				adds = append(adds, rt)
				dels = append(dels, churn[(pos+i+len(churn)/2)%len(churn)].Prefix)
			}
			pos += n
			t := time.Now()
			a.Routes.ApplyBatch(adds, dels)
			d := time.Since(t).Nanoseconds()
			convTotal += d
			if d > convMax {
				convMax = d
			}
			batches++
			applied += 2 * n
		}
	}()
	t0 = time.Now()
	if err := sendRange(half, opts.Packets); err != nil {
		return res, err
	}
	if err := drain(int64(opts.Packets)); err != nil {
		return res, err
	}
	res.ChurnPPS = float64(opts.Packets-half) / time.Since(t0).Seconds()
	<-churnDone

	res.Elapsed = time.Since(start)
	res.Received = int(received.Load())
	res.Dup = int(duplicates.Load())
	res.Batches = int(batches)
	if batches > 0 {
		res.ConvergeMean = time.Duration(convTotal / batches)
		res.ConvergeMax = time.Duration(convMax)
	}
	return res, nil
}

// buildFIBWirePair assembles the churn topology: router A carries the
// full-scale FIB (plus the default route the test traffic rides) and
// feeds router B over a UDP wire; B's egress link points at the sink.
func buildFIBWirePair(kind string, routes int, sinkAddr string) (a, b *eisr.Router, err error) {
	mk := func() (*eisr.Router, error) {
		r, err := eisr.New(eisr.Options{VerifyChecksums: true, BMP: kind})
		if err != nil {
			return nil, err
		}
		for idx, name := range []string{"lan", "wan"} {
			ifc := netdev.NewInterface(int32(idx), netdev.Config{Name: name, MTU: 1500})
			r.Core.AddInterface(ifc)
		}
		if err := r.AddRoute("0.0.0.0/0 dev 1"); err != nil {
			return nil, err
		}
		return r, nil
	}
	if a, err = mk(); err != nil {
		return nil, nil, err
	}
	if b, err = mk(); err != nil {
		return nil, nil, err
	}
	// The full table, loaded as one batch (one snapshot publication).
	rng := rand.New(rand.NewSource(7))
	a.Routes.ApplyBatch(genRoutes(rng, routes), nil)

	var linkA, linkBIn, linkBOut *netio.UDPLink
	if linkA, err = a.AttachUDPLink(1, "127.0.0.1:0", ""); err != nil {
		return nil, nil, err
	}
	if linkBIn, err = b.AttachUDPLink(0, "127.0.0.1:0", ""); err != nil {
		return nil, nil, err
	}
	if linkBOut, err = b.AttachUDPLink(1, "127.0.0.1:0", sinkAddr); err != nil {
		return nil, nil, err
	}
	if err = linkA.SetPeer(linkBIn.LocalAddr()); err != nil {
		return nil, nil, err
	}
	_ = linkBOut
	return a, b, nil
}

// FIBChurnTable renders the churn experiment.
func FIBChurnTable(r FIBChurnResult) *Table {
	t := &Table{
		Title:  "FIB churn: forwarding while the table mutates",
		Header: []string{"kind", "routes", "updates", "batches", "pkts", "recv", "lost", "base pkts/s", "churn pkts/s", "conv mean", "conv max"},
	}
	t.Add(r.Kind, fmt.Sprint(r.Routes), fmt.Sprint(r.Updates), fmt.Sprint(r.Batches),
		fmt.Sprint(r.Packets), fmt.Sprint(r.Received), fmt.Sprint(r.Lost()),
		fmtRate(r.BaselinePPS), fmtRate(r.ChurnPPS),
		r.ConvergeMean.Round(time.Microsecond).String(),
		r.ConvergeMax.Round(time.Microsecond).String())
	t.Note("convergence = ApplyBatch call to snapshot publication (the moment forwarding sees the change)")
	return t
}
