package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

// ParallelRow is one worker-count measurement of the parallel
// forwarding engine on the cache-hit path.
type ParallelRow struct {
	Workers int
	PPS     float64
	Speedup float64 // vs the 1-worker row
}

// ParallelOptions sizes the experiment.
type ParallelOptions struct {
	Flows      int   // distinct five-tuple flows (default 1024)
	PerFlow    int   // packets per flow (default 200)
	Workers    []int // worker counts to sweep (default 1,2,4)
	OutIfs     int   // output interfaces to spread enqueue locking (default 8)
	FlowShards int   // flow-table shards (default: table default)
}

// RunParallel measures steady-state cache-hit forwarding throughput as
// worker count grows. Packets are pre-built and pre-partitioned by the
// engine's own steering function outside the timed region, so the
// measurement isolates the data path itself: per-worker goroutines call
// Forward back-to-back the way pool workers do, all flows are primed
// into the flow table first, and each worker only ever touches the
// flow-table shards its steering byte owns — the zero-cross-worker-
// locking property under test.
func RunParallel(opt ParallelOptions) ([]ParallelRow, error) {
	if opt.Flows <= 0 {
		opt.Flows = 1024
	}
	if opt.PerFlow <= 0 {
		opt.PerFlow = 200
	}
	if len(opt.Workers) == 0 {
		opt.Workers = []int{1, 2, 4}
	}
	if opt.OutIfs <= 0 {
		opt.OutIfs = 8
	}

	routes, err := routing.New(bmp.KindBSPL)
	if err != nil {
		return nil, err
	}
	a := aiu.New(aiu.Config{
		BMPKind:     bmp.KindBSPL,
		FlowBuckets: opt.Flows * 4,
		MaxFlows:    opt.Flows * 2,
		FlowShards:  opt.FlowShards,
	}, pcu.TypeSched)
	inst := benchInstance{}
	a.Bind(pcu.TypeSched, aiu.MatchAll(), &inst, nil)

	r, err := ipcore.New(ipcore.Config{
		Mode: ipcore.ModePlugin, Gates: []pcu.Type{pcu.TypeSched},
		AIU: a, Routes: routes,
		// Deep queues: the timed region enqueues without draining, and a
		// queue-full drop would change what is being measured.
		OutQueueLen: opt.Flows*opt.PerFlow/opt.OutIfs + 4096,
	})
	if err != nil {
		return nil, err
	}
	in := netdev.NewInterface(0, netdev.Config{})
	r.AddInterface(in)
	// Flows spread over OutIfs sink interfaces so the per-interface
	// output lock is not the bottleneck being measured.
	for i := 0; i < opt.OutIfs; i++ {
		idx := int32(100 + i)
		r.AddInterface(netdev.NewInterface(idx, netdev.Config{}))
		routes.Add(pkt.PrefixFrom(pkt.AddrV4(uint32(20+i)<<24), 8), routing.NextHop{IfIndex: idx})
	}

	// Per-flow wire images, shared by all of a flow's packets: steering
	// sends a flow to exactly one worker, so its packets are processed
	// sequentially and in-place TTL rewrites never race.
	buf := make([][]byte, opt.Flows)
	for f := 0; f < opt.Flows; f++ {
		data, err := pkt.BuildUDP(pkt.UDPSpec{
			Src:     pkt.AddrV4(0x0a000000 + uint32(f)),
			Dst:     pkt.AddrV4(uint32(20+f%opt.OutIfs)<<24 | uint32(f)),
			SrcPort: uint16(1000 + f%60000), DstPort: 9,
			TTL: 255, Payload: make([]byte, 64),
		})
		if err != nil {
			return nil, err
		}
		buf[f] = data
	}

	// Prime every flow into the table so the sweep measures the
	// steady-state hit path (the paper's cached-lookup regime).
	now := time.Now()
	for f := 0; f < opt.Flows; f++ {
		p, err := pkt.NewPacket(buf[f], 0)
		if err != nil {
			return nil, err
		}
		p.Stamp = now
		r.Forward(p)
	}
	drain(r, opt.OutIfs)

	rows := make([]ParallelRow, 0, len(opt.Workers))
	var base float64
	for _, w := range opt.Workers {
		// Pre-partition by the engine's steering function; packet
		// structs are rebuilt per run (Forward mutates them).
		parts := make([][]*pkt.Packet, w)
		for f := 0; f < opt.Flows; f++ {
			k, err := pkt.ExtractKey(buf[f], 0)
			if err != nil {
				return nil, err
			}
			wi := aiu.SteerWorker(k, w)
			for j := 0; j < opt.PerFlow; j++ {
				p := &pkt.Packet{Data: buf[f], Key: k, KeyValid: true, InIf: 0, OutIf: -1, Stamp: now}
				parts[wi] = append(parts[wi], p)
			}
		}

		var wg sync.WaitGroup
		start := time.Now()
		for wi := 0; wi < w; wi++ {
			wg.Add(1)
			go func(list []*pkt.Packet) {
				defer wg.Done()
				for _, p := range list {
					r.Forward(p)
				}
			}(parts[wi])
		}
		wg.Wait()
		elapsed := time.Since(start)
		drain(r, opt.OutIfs)

		total := float64(opt.Flows * opt.PerFlow)
		pps := total / elapsed.Seconds()
		if w == opt.Workers[0] {
			base = pps
		}
		rows = append(rows, ParallelRow{Workers: w, PPS: pps, Speedup: pps / base})
	}
	return rows, nil
}

// drain empties every output queue between runs.
func drain(r *ipcore.Router, outIfs int) {
	for i := 0; i < outIfs; i++ {
		for r.TxDrain(int32(100+i), 1<<16) > 0 {
		}
	}
}

// ParallelTable renders the sweep.
func ParallelTable(rows []ParallelRow) *Table {
	t := &Table{
		Title:  "Parallel forwarding engine: cache-hit throughput vs workers",
		Header: []string{"workers", "throughput", "speedup"},
	}
	for _, row := range rows {
		t.Add(fmt.Sprintf("%d", row.Workers), fmtRate(row.PPS), fmt.Sprintf("%.2fx", row.Speedup))
	}
	t.Note("flow-hash steering: per-flow ordering preserved, each flow-table shard owned by one worker (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0))
	return t
}
