package bench

import (
	"os"
	"testing"

	"github.com/routerplugins/eisr/internal/sched"
)

// TestSchedScaleEiffelZeroAlloc is the always-on allocation guard for the
// Eiffel fast path: once flows exist and the in-flight packet set is
// built, an enqueue+dequeue pair must not touch the heap — the wheel is
// fixed-size arrays and the per-packet chain is intrusive.
func TestSchedScaleEiffelZeroAlloc(t *testing.T) {
	e := sched.NewEiffel(1500, 0)
	const flows = 512
	qs := make([]*sched.EiffelQueue, flows)
	for i := range qs {
		qs[i] = e.NewQueue("", 1)
	}
	ps := scalePackets(flows)
	for i, p := range ps {
		if err := e.EnqueueFlow(qs[i], p); err != nil {
			t.Fatal(err)
		}
	}
	f := 0
	if avg := testing.AllocsPerRun(2000, func() {
		p := e.Dequeue()
		if p == nil {
			t.Fatal("empty in steady state")
		}
		if err := e.EnqueueFlow(qs[f%flows], p); err != nil {
			t.Fatal(err)
		}
		f++
	}); avg != 0 {
		t.Errorf("eiffel enqueue+dequeue allocates %.2f objects/op, want 0", avg)
	}
}

// TestBenchSmokeSchedScale runs the scale sweep at the 10k and 100k
// tiers and enforces the tentpole shape: Eiffel's per-packet cost must
// not grow with the live-flow count (<=2x from 10k to 100k) and the
// steady state must not allocate. Gated like the other smoke tests;
// run via `make bench-smoke`.
func TestBenchSmokeSchedScale(t *testing.T) {
	if os.Getenv("EISR_BENCH_SMOKE") == "" {
		t.Skip("set EISR_BENCH_SMOKE=1 to run benchmark smoke tests")
	}
	rows := RunSchedScale(SchedScaleOptions{Tiers: []int{10_000, 100_000}})
	t.Logf("\n%s", SchedScaleTable(rows))
	var small, big *SchedScaleRow
	for i := range rows {
		r := &rows[i]
		if r.Scheduler != "Eiffel" {
			continue
		}
		switch r.Flows {
		case 10_000:
			small = r
		case 100_000:
			big = r
		}
	}
	if small == nil || big == nil {
		t.Fatal("sweep missing Eiffel tiers")
	}
	if big.AllocsPerOp > 0.01 {
		t.Errorf("eiffel steady state allocates %.3f objects/op at 100k flows, want 0", big.AllocsPerOp)
	}
	lo := small.EnqNs + small.DeqNs
	hi := big.EnqNs + big.DeqNs
	if hi > 2*lo {
		t.Errorf("eiffel per-packet cost grew %.0f -> %.0f ns/op from 10k to 100k flows (limit 2x)", lo, hi)
	}
}
