package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/cycles"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/trafficgen"
)

// AblateCacheRow contrasts flow-cached classification against
// classify-every-packet — quantifying how much of the paper's 8% result
// rests on the flow cache exploiting traffic locality.
type AblateCacheRow struct {
	Mode     string
	NsPerPkt float64
	Accesses float64
}

// RunAblateCache runs the same bursty trace through the normal cached
// path and through a forced classify-per-packet path.
func RunAblateCache(seed int64, nFlows, nPackets int, burstiness float64) []AblateCacheRow {
	rng := rand.New(rand.NewSource(seed))
	filters := trafficgen.FlowLikeFilters(rng, 1000, false)
	keys := trafficgen.RandomKeys(rng, nFlows, false)
	trace := trafficgen.LocalityTrace(rng, nFlows, nPackets, burstiness)

	build := func() *aiu.AIU {
		a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL, MaxFlows: nFlows * 2}, pcu.TypeSched)
		inst := benchInstance{}
		for _, f := range filters {
			a.Bind(pcu.TypeSched, f, &inst, nil)
		}
		a.Bind(pcu.TypeSched, aiu.MatchAll(), &inst, nil)
		a.ClassifyKey(pcu.TypeSched, keys[0], nil) // build
		return a
	}

	var rows []AblateCacheRow
	now := time.Now()

	a := build()
	var mem uint64
	t0 := nowNs()
	for _, fi := range trace {
		p := &pkt.Packet{Key: keys[fi], KeyValid: true, OutIf: -1}
		var c cycles.Counter
		a.LookupGate(p, pcu.TypeSched, now, &c)
		mem += c.Total()
	}
	rows = append(rows, AblateCacheRow{
		Mode:     "flow cache on (normal data path)",
		NsPerPkt: float64(nowNs()-t0) / float64(len(trace)),
		Accesses: float64(mem) / float64(len(trace)),
	})

	b := build()
	mem = 0
	t0 = nowNs()
	for _, fi := range trace {
		var c cycles.Counter
		b.ClassifyKey(pcu.TypeSched, keys[fi], &c)
		mem += c.Total()
	}
	rows = append(rows, AblateCacheRow{
		Mode:     "flow cache off (classify every packet)",
		NsPerPkt: float64(nowNs()-t0) / float64(len(trace)),
		Accesses: float64(mem) / float64(len(trace)),
	})
	return rows
}

// AblateCacheTable renders the comparison.
func AblateCacheTable(rows []AblateCacheRow) *Table {
	t := &Table{
		Title:  "Ablation: flow cache on/off",
		Header: []string{"mode", "ns/pkt", "accesses/pkt"},
	}
	for _, r := range rows {
		t.Add(r.Mode, fmt.Sprintf("%.0f", r.NsPerPkt), fmt.Sprintf("%.1f", r.Accesses))
	}
	t.Note("the cache converts a per-packet DAG walk into a hash probe for all but the first packet of each burst")
	return t
}

// AblateBMPRow is one BMP algorithm's classification cost inside the
// DAG.
type AblateBMPRow struct {
	Kind     bmp.Kind
	NsPerKey float64
	Accesses float64
}

// RunAblateBMP swaps the DAG's address match plugin — the paper's
// modularity argument made measurable ("we can easily replace our
// DAG-based classifier with a new classifier plugin").
func RunAblateBMP(seed int64, nFilters int) []AblateBMPRow {
	rng := rand.New(rand.NewSource(seed))
	filters := trafficgen.FlowLikeFilters(rng, nFilters, false)
	keys := trafficgen.RandomKeys(rng, 4096, false)
	var rows []AblateBMPRow
	for _, kind := range []bmp.Kind{bmp.KindLinear, bmp.KindPatricia, bmp.KindBSPL, bmp.KindCPE} {
		a := aiu.New(aiu.Config{BMPKind: kind}, pcu.TypeSched)
		inst := benchInstance{}
		for _, f := range filters {
			a.Bind(pcu.TypeSched, f, &inst, nil)
		}
		a.ClassifyKey(pcu.TypeSched, keys[0], nil)
		var mem uint64
		t0 := nowNs()
		for _, k := range keys {
			var c cycles.Counter
			a.ClassifyKey(pcu.TypeSched, k, &c)
			mem += c.Total()
		}
		rows = append(rows, AblateBMPRow{
			Kind:     kind,
			NsPerKey: float64(nowNs()-t0) / float64(len(keys)),
			Accesses: float64(mem) / float64(len(keys)),
		})
	}
	return rows
}

// AblateBMPTable renders the comparison.
func AblateBMPTable(rows []AblateBMPRow, nFilters int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: BMP match plugin inside the DAG (%d filters)", nFilters),
		Header: []string{"BMP plugin", "ns/lookup", "accesses/lookup"},
	}
	for _, r := range rows {
		t.Add(string(r.Kind), fmt.Sprintf("%.0f", r.NsPerKey), fmt.Sprintf("%.1f", r.Accesses))
	}
	t.Note("patricia is the paper's 'slower but freely available' plugin; bspl its fast patented one; cpe the cited state of the art")
	return t
}

// AblateInterDAGRow contrasts the §5.1.2 inter-DAG sharing optimization.
type AblateInterDAGRow struct {
	Mode        string
	FirstPktMem float64
	FirstPktNs  float64
}

// RunAblateInterDAG measures the uncached (first-packet) classification
// cost across gates whose filter tables are identical — the situation
// the paper's inter-DAG pointers target — with sharing off and on.
func RunAblateInterDAG(seed int64, nGates, nFilters int) []AblateInterDAGRow {
	rng := rand.New(rand.NewSource(seed))
	filters := trafficgen.FlowLikeFilters(rng, nFilters, false)
	keys := trafficgen.RandomKeys(rng, 4096, false)
	var rows []AblateInterDAGRow
	for _, share := range []bool{false, true} {
		gates := make([]pcu.Type, nGates)
		for i := range gates {
			gates[i] = pcu.Type(uint16(pcu.TypeUser) + uint16(i))
		}
		a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL, ShareIdenticalTables: share, MaxFlows: 1 << 20}, gates...)
		inst := benchInstance{}
		for _, g := range gates {
			for _, f := range filters {
				a.Bind(g, f, &inst, nil)
			}
		}
		for _, g := range gates {
			a.ClassifyKey(g, keys[0], nil) // build every gate's DAG outside the timer
		}
		now := time.Now()
		var mem uint64
		t0 := nowNs()
		for i, k := range keys {
			k.SrcPort = uint16(i) // unique flows: always the slow path
			p := &pkt.Packet{Key: k, KeyValid: true, OutIf: -1}
			var c cycles.Counter
			a.LookupGate(p, gates[0], now, &c)
			mem += c.Total()
		}
		mode := "inter-DAG sharing off"
		if share {
			mode = "inter-DAG sharing on"
		}
		rows = append(rows, AblateInterDAGRow{
			Mode:        mode,
			FirstPktMem: float64(mem) / float64(len(keys)),
			FirstPktNs:  float64(nowNs()-t0) / float64(len(keys)),
		})
	}
	return rows
}

// AblateInterDAGTable renders the comparison.
func AblateInterDAGTable(rows []AblateInterDAGRow, nGates int) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: inter-DAG sharing (§5.1.2), %d gates with identical tables", nGates),
		Header: []string{"mode", "first-pkt accesses", "first-pkt ns"},
	}
	for _, r := range rows {
		t.Add(r.Mode, fmt.Sprintf("%.1f", r.FirstPktMem), fmt.Sprintf("%.0f", r.FirstPktNs))
	}
	t.Note("with sharing, later gates resolve via one pointer access instead of a DAG walk; cached packets are unaffected either way")
	return t
}

// AblateCollapseRow contrasts node collapsing on/off.
type AblateCollapseRow struct {
	Mode     string
	Accesses float64
	Nodes    int
}

// RunAblateCollapse measures the §5.1.2 node-collapsing optimization on
// a filter population with wildcard-heavy tails.
func RunAblateCollapse(seed int64) []AblateCollapseRow {
	rng := rand.New(rand.NewSource(seed))
	// Prefix-only filters: everything past the address fields wild, so
	// collapsing elides four levels.
	var filters []aiu.Filter
	for i := 0; i < 256; i++ {
		f := aiu.MatchAll()
		f.Src = aiu.AddrIn(pkt.PrefixFrom(pkt.AddrV4(rng.Uint32()), 8+rng.Intn(17)))
		filters = append(filters, f)
	}
	keys := trafficgen.RandomKeys(rng, 4096, false)
	var rows []AblateCollapseRow
	for _, collapse := range []bool{false, true} {
		a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL, CollapseNodes: collapse}, pcu.TypeSched)
		inst := benchInstance{}
		for _, f := range filters {
			a.Bind(pcu.TypeSched, f, &inst, nil)
		}
		a.ClassifyKey(pcu.TypeSched, keys[0], nil)
		var mem uint64
		for _, k := range keys {
			var c cycles.Counter
			a.ClassifyKey(pcu.TypeSched, k, &c)
			mem += c.Total()
		}
		mode := "collapse off"
		if collapse {
			mode = "collapse on"
		}
		rows = append(rows, AblateCollapseRow{
			Mode:     mode,
			Accesses: float64(mem) / float64(len(keys)),
			Nodes:    a.DAGNodes(pcu.TypeSched),
		})
	}
	return rows
}

// AblateCollapseTable renders the comparison.
func AblateCollapseTable(rows []AblateCollapseRow) *Table {
	t := &Table{
		Title:  "Ablation: DAG node collapsing (§5.1.2)",
		Header: []string{"mode", "accesses/lookup", "DAG nodes"},
	}
	for _, r := range rows {
		t.Add(r.Mode, fmt.Sprintf("%.1f", r.Accesses), fmt.Sprintf("%d", r.Nodes))
	}
	t.Note("collapsing skips all-wildcard levels: fewer edge accesses and fewer nodes on prefix-only policies")
	return t
}
