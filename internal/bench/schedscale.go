package bench

import (
	"fmt"
	"runtime"

	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/sched"
)

// SchedScaleRow is one (scheduler, flow-count) point of the scale sweep.
type SchedScaleRow struct {
	Scheduler string
	Flows     int
	// QueueBytes is the measured heap cost of one idle flow queue.
	QueueBytes float64
	// EnqNs/DeqNs are steady-state per-packet costs with a standing
	// backlog spread across the flows.
	EnqNs, DeqNs float64
	// AllocsPerOp is heap allocations per enqueue+dequeue pair in steady
	// state (the fast path must not allocate).
	AllocsPerOp float64
	// EvictNsPerQ is the per-queue teardown cost (PurgeIdle for Eiffel,
	// RemoveQueue for DRR); <0 means not measured.
	EvictNsPerQ float64
	Note        string
}

// SchedScaleOptions sizes the sweep.
type SchedScaleOptions struct {
	// Tiers are the live-flow counts (default 10k, 100k, 1M).
	Tiers []int
	// Ops is the steady-state packet count timed per tier (default 1<<18).
	Ops int
}

// Window and backlog geometry of the steady-state loop: each round
// enqueues one window of packets to a rotating span of flows and
// dequeues one window, on top of a standing backlog that keeps the
// wheel/active-list realistically occupied.
const (
	scaleWindow     = 4096
	scaleMaxBacklog = 1 << 16
)

// RunSchedScale sweeps live-flow counts across schedulers: Eiffel at
// every tier, DRR capped at 100k flows (its per-queue FIFO preallocates
// 128 packet slots — ~1 GB of pointer arrays at a million flows), H-FSC
// capped at 10k (per-packet heap operations are O(log n) and the
// comparison point only needs the trend). The million-flow tier is the
// tentpole claim: Eiffel's enqueue+dequeue cost must stay flat from 10k
// to 1M because every operation is an intrusive list append plus a
// bounded FFS probe, regardless of how many flows are live.
func RunSchedScale(opts SchedScaleOptions) []SchedScaleRow {
	tiers := opts.Tiers
	if len(tiers) == 0 {
		tiers = []int{10_000, 100_000, 1_000_000}
	}
	ops := opts.Ops
	if ops <= 0 {
		ops = 1 << 18
	}
	var rows []SchedScaleRow
	for _, n := range tiers {
		rows = append(rows, runEiffelScale(n, ops))
	}
	for _, n := range tiers {
		if n > 100_000 {
			rows = append(rows, SchedScaleRow{
				Scheduler: "DRR", Flows: n, EvictNsPerQ: -1,
				Note: "skipped: 128-slot FIFO prealloc ~1KB/flow",
			})
			continue
		}
		rows = append(rows, runDRRScale(n, ops))
	}
	for _, n := range tiers {
		if n > 10_000 {
			rows = append(rows, SchedScaleRow{
				Scheduler: "H-FSC", Flows: n, EvictNsPerQ: -1,
				Note: "skipped: O(log n) heap per packet",
			})
			continue
		}
		rows = append(rows, runHFSCScale(n, ops))
	}
	return rows
}

// heapInUse forces a collection and reads live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// scalePackets builds the recycled in-flight packet set: Data slices all
// alias one buffer (the schedulers only read the length), so a window
// costs packet headers, not payloads.
func scalePackets(n int) []*pkt.Packet {
	buf := make([]byte, 1500)
	ps := make([]*pkt.Packet, n)
	for i := range ps {
		ps[i] = &pkt.Packet{Data: buf[:1000]}
	}
	return ps
}

// scaleSteady runs the shared steady-state loop: seed a standing
// backlog of one packet on each of the first backlog flows, then time
// rounds that dequeue one window of packets and re-enqueue exactly
// those packets onto a rotating flow span — the in-flight set recycles,
// the backlog holds steady, and no packet is ever enqueued while the
// scheduler still holds it. Returns per-op enqueue ns, dequeue ns, and
// allocations per enqueue+dequeue pair.
func scaleSteady(n, ops int, enqFlow func(flow int, p *pkt.Packet) error, deq func() *pkt.Packet) (enqNs, deqNs, allocs float64) {
	backlog := n
	if backlog > scaleMaxBacklog {
		backlog = scaleMaxBacklog
	}
	standing := scalePackets(backlog)
	for i, p := range standing {
		if err := enqFlow(i, p); err != nil {
			panic(fmt.Sprintf("bench: seeding backlog: %v", err))
		}
	}
	scratch := make([]*pkt.Packet, scaleWindow)
	rounds := ops / scaleWindow
	if rounds < 2 {
		rounds = 2
	}
	oneRound := func(base int) (int64, int64) {
		t0 := nowNs()
		for i := range scratch {
			p := deq()
			if p == nil {
				panic("bench: scheduler empty in steady state")
			}
			scratch[i] = p
		}
		t1 := nowNs()
		for i, p := range scratch {
			if err := enqFlow((base+i)%n, p); err != nil {
				panic(fmt.Sprintf("bench: steady enqueue: %v", err))
			}
		}
		return nowNs() - t1, t1 - t0
	}
	// Warmup round, untimed: fault in the wheel/active list.
	base := backlog
	oneRound(base)
	base += scaleWindow

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	var te, td int64
	for r := 0; r < rounds; r++ {
		e, d := oneRound(base)
		te += e
		td += d
		base += scaleWindow
	}
	runtime.ReadMemStats(&m1)
	total := float64(rounds * scaleWindow)
	// The two ReadMemStats calls themselves may allocate a few objects;
	// amortized over >=2^18 ops that noise is far below 0.01 allocs/op.
	return float64(te) / total, float64(td) / total,
		float64(m1.Mallocs-m0.Mallocs) / total
}

func runEiffelScale(n, ops int) SchedScaleRow {
	e := sched.NewEiffel(1500, 0)
	before := heapInUse()
	qs := make([]*sched.EiffelQueue, n)
	for i := range qs {
		// Empty labels: at a million flows the label strings would
		// dominate the per-queue footprint being measured.
		qs[i] = e.NewQueue("", 1)
	}
	perQueue := (float64(heapInUse()) - float64(before)) / float64(n)
	enq, deq, allocs := scaleSteady(n, ops, func(f int, p *pkt.Packet) error {
		return e.EnqueueFlow(qs[f], p)
	}, e.Dequeue)
	for e.Dequeue() != nil {
	}
	t0 := nowNs()
	purged := e.PurgeIdle()
	evict := float64(nowNs()-t0) / float64(purged)
	return SchedScaleRow{
		Scheduler: "Eiffel", Flows: n, QueueBytes: perQueue,
		EnqNs: enq, DeqNs: deq, AllocsPerOp: allocs, EvictNsPerQ: evict,
		Note: fmt.Sprintf("purged %d idle queues", purged),
	}
}

func runDRRScale(n, ops int) SchedScaleRow {
	d := sched.NewDRR(1500, 0)
	before := heapInUse()
	qs := make([]*sched.DRRQueue, n)
	for i := range qs {
		qs[i] = d.NewQueue("", 1)
	}
	perQueue := (float64(heapInUse()) - float64(before)) / float64(n)
	enq, deq, allocs := scaleSteady(n, ops, func(f int, p *pkt.Packet) error {
		return d.EnqueueFlow(qs[f], p)
	}, d.Dequeue)
	for d.Dequeue() != nil {
	}
	t0 := nowNs()
	for _, q := range qs {
		d.RemoveQueue(q)
	}
	evict := float64(nowNs()-t0) / float64(n)
	return SchedScaleRow{
		Scheduler: "DRR", Flows: n, QueueBytes: perQueue,
		EnqNs: enq, DeqNs: deq, AllocsPerOp: allocs, EvictNsPerQ: evict,
	}
}

func runHFSCScale(n, ops int) SchedScaleRow {
	h := sched.NewHFSC(125e6)
	// Full-rate real-time curves keep every backlogged class eligible,
	// so the timed loop measures heap cost, not curve wake-ups. H-FSC's
	// per-op cost is orders of magnitude above the others, so a fraction
	// of the op budget gives the same per-op resolution.
	ops /= 8
	rt := sched.LinearCurve(125e6)
	before := heapInUse()
	cls := make([]*sched.Class, n)
	for i := range cls {
		// Small explicit FIFOs: the default leaf queue preallocates 64k
		// slots and would swamp the per-class footprint figure.
		c, err := h.AddClass("", nil, &rt, &rt, nil, sched.NewFIFO(64))
		if err != nil {
			panic(err)
		}
		cls[i] = c
	}
	perQueue := (float64(heapInUse()) - float64(before)) / float64(n)
	now := 0.0
	enq, deq, allocs := scaleSteady(n, ops, func(f int, p *pkt.Packet) error {
		now += 1e-7
		return h.EnqueueClass(cls[f], p, now)
	}, func() *pkt.Packet {
		for i := 0; i < 1000; i++ {
			now += 1e-6
			if p := h.DequeueAt(now); p != nil {
				return p
			}
		}
		return nil
	})
	return SchedScaleRow{
		Scheduler: "H-FSC", Flows: n, QueueBytes: perQueue,
		EnqNs: enq, DeqNs: deq, AllocsPerOp: allocs, EvictNsPerQ: -1,
	}
}

// SchedScaleTable renders the sweep.
func SchedScaleTable(rows []SchedScaleRow) *Table {
	t := &Table{
		Title:  "Scheduler scale sweep (live flows vs per-packet cost)",
		Header: []string{"scheduler", "flows", "queue bytes", "enq ns/op", "deq ns/op", "allocs/op", "evict ns/q", "note"},
	}
	for _, r := range rows {
		if r.Note != "" && r.EnqNs == 0 && r.DeqNs == 0 {
			t.Add(r.Scheduler, fmt.Sprintf("%d", r.Flows), "-", "-", "-", "-", "-", r.Note)
			continue
		}
		evict := "-"
		if r.EvictNsPerQ >= 0 {
			evict = fmt.Sprintf("%.0f", r.EvictNsPerQ)
		}
		t.Add(r.Scheduler, fmt.Sprintf("%d", r.Flows),
			fmt.Sprintf("%.0f", r.QueueBytes),
			fmt.Sprintf("%.0f", r.EnqNs), fmt.Sprintf("%.0f", r.DeqNs),
			fmt.Sprintf("%.3f", r.AllocsPerOp), evict, r.Note)
	}
	t.Note("shape target: Eiffel ns/op flat from 10k to 1M flows (<=2x), 0 allocs/op steady state")
	return t
}
