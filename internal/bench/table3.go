package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/plugins"
	"github.com/routerplugins/eisr/internal/routing"
	"github.com/routerplugins/eisr/internal/sched"
	"github.com/routerplugins/eisr/internal/trafficgen"
)

// Table3Config names one kernel configuration of the §7.3 measurement.
type Table3Config string

// The four rows of Table 3.
const (
	KernelBestEffort Table3Config = "Unmodified best-effort kernel"
	KernelPlugin     Table3Config = "Plugin architecture (3 gates, empty plugins)"
	KernelALTQDRR    Table3Config = "Monolithic kernel with ALTQ and DRR"
	KernelPluginDRR  Table3Config = "Plugin architecture with a DRR plugin"
)

// Table3Row is one measured configuration.
type Table3Row struct {
	Config     Table3Config
	AvgPerPkt  time.Duration
	Relative   float64 // vs best effort
	Throughput float64 // packets/second
	// PaperCycles / PaperRelative are the published numbers for
	// side-by-side display.
	PaperCycles   int
	PaperRelative float64
}

// Table3Options tunes the run.
type Table3Options struct {
	Reps    int  // paper: 1000
	PerFlow int  // packets per flow per rep; paper: 100
	IPv6    bool // paper measured UDP/IPv6; both are supported
}

type table3Rig struct {
	router *ipcore.Router
	inIf   *netdev.Interface
}

// buildRig assembles one kernel configuration with two interfaces and
// the measurement workload's routes and filters.
func buildRig(cfg Table3Config, v6 bool) (*table3Rig, error) {
	routes, err := routing.New(bmp.KindBSPL)
	if err != nil {
		return nil, err
	}
	routes.Add(pkt.MustParsePrefix("0.0.0.0/0"), routing.NextHop{IfIndex: 1})
	routes.Add(pkt.MustParsePrefix("::/0"), routing.NextHop{IfIndex: 1})

	var a *aiu.AIU
	mode := ipcore.ModeBestEffort
	var mono sched.Scheduler
	var gates []pcu.Type

	switch cfg {
	case KernelBestEffort:
	case KernelALTQDRR:
		mono = sched.NewALTQDRR(256, 1500)
	case KernelPlugin:
		// "We installed three gates which called empty plugins for the
		// first test": three pass-through gates.
		mode = ipcore.ModePlugin
		gates = []pcu.Type{pcu.TypeOptions, pcu.TypeSecurity, pcu.TypeFirewall}
		a = aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, gates...)
	case KernelPluginDRR:
		// "...and only one gate for packet scheduling in case DRR was
		// turned on."
		mode = ipcore.ModePlugin
		gates = []pcu.Type{pcu.TypeSched}
		a = aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, gates...)
	}
	r, err := ipcore.New(ipcore.Config{
		Mode: mode, Gates: gates, AIU: a, Routes: routes, MonoSched: mono,
		VerifyChecksums: true,
	})
	if err != nil {
		return nil, err
	}
	in := netdev.NewInterface(0, netdev.Config{})
	out := netdev.NewInterface(1, netdev.Config{})
	r.AddInterface(in)
	r.AddInterface(out)

	if a != nil {
		// The measurement's 16 installed filters, in the first gate's
		// filter table.
		null := &plugins.NullInstance{}
		for _, f := range trafficgen.Table3Filters() {
			if _, err := a.Bind(gates[0], f, null, nil); err != nil {
				return nil, err
			}
		}
		switch cfg {
		case KernelPlugin:
			// Three gates calling empty plugins for every flow: "flow
			// detection and the three function calls".
			for _, g := range gates {
				inst := &plugins.NullInstance{}
				if _, err := a.Bind(g, aiu.MatchAll(), inst, nil); err != nil {
					return nil, err
				}
			}
		case KernelPluginDRR:
			env := &plugins.Env{Router: r, AIU: a}
			drrPlugin := plugins.NewDRRPlugin(env)
			msg := &pcu.Message{Kind: pcu.MsgCreateInstance, Args: map[string]string{"iface": "1", "quantum": "9180"}}
			if err := drrPlugin.Callback(msg); err != nil {
				return nil, err
			}
			inst := msg.Reply.(*plugins.DRRInstance)
			if _, err := a.Bind(pcu.TypeSched, aiu.MatchAll(), inst, nil); err != nil {
				return nil, err
			}
		}
	}
	return &table3Rig{router: r, inIf: in}, nil
}

// RunTable3 reproduces Table 3: overall packet processing time for the
// four kernel configurations under the paper's workload (three
// concurrent 8 KB UDP flows, PerFlow packets each, Reps repetitions).
// Packets are timestamped at receive and the clock is read after the
// transmit handoff, exactly like the instrumented driver.
func RunTable3(opts Table3Options) ([]Table3Row, error) {
	if opts.Reps <= 0 {
		opts.Reps = 100
	}
	if opts.PerFlow <= 0 {
		opts.PerFlow = 100
	}
	flows := trafficgen.Table3Flows()
	if opts.IPv6 {
		flows = trafficgen.Table3FlowsV6()
	}
	paper := map[Table3Config]struct {
		cycles int
		rel    float64
	}{
		KernelBestEffort: {6460, 1.00},
		KernelPlugin:     {6970, 1.08},
		KernelALTQDRR:    {8160, 1.26},
		KernelPluginDRR:  {8110, 1.26},
	}
	configs := []Table3Config{KernelBestEffort, KernelPlugin, KernelALTQDRR, KernelPluginDRR}
	var rows []Table3Row
	var baseline time.Duration
	for _, cfg := range configs {
		rig, err := buildRig(cfg, opts.IPv6)
		if err != nil {
			return nil, err
		}
		// Pre-build one datagram per flow; each measured packet is a
		// fresh copy (forwarding mutates TTL/checksum in place).
		protos := make([][]byte, len(flows))
		for i, f := range flows {
			d, err := f.Datagram()
			if err != nil {
				return nil, err
			}
			protos[i] = d
		}
		// Each measured packet passes the device driver (Inject: copy
		// into the mbuf ring, header parse, timestamp), the full
		// forward path, and the transmit handoff — the paper's
		// measurement window runs from the driver timestamp to "right
		// before the packet was output to the hardware". The workload
		// runs several times; the median average defeats GC and
		// scheduler noise.
		runOnce := func() (time.Duration, error) {
			var total time.Duration
			var count int
			for rep := 0; rep < opts.Reps; rep++ {
				for i := 0; i < opts.PerFlow; i++ {
					for fi := range flows {
						start := time.Now()
						if err := rig.inIf.Inject(protos[fi]); err != nil {
							return 0, err
						}
						p := rig.inIf.Poll()
						rig.router.ProcessOne(p)
						total += time.Since(start)
						count++
					}
				}
			}
			return total / time.Duration(count), nil
		}
		if _, err := runOnce(); err != nil { // warmup: fill caches, JIT the branch predictors
			return nil, err
		}
		const trials = 5
		samples := make([]time.Duration, 0, trials)
		for t := 0; t < trials; t++ {
			runtime.GC()
			avg, err := runOnce()
			if err != nil {
				return nil, err
			}
			samples = append(samples, avg)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		avg := samples[trials/2]
		if cfg == KernelBestEffort {
			baseline = avg
		}
		rel := float64(avg) / float64(baseline)
		rows = append(rows, Table3Row{
			Config: cfg, AvgPerPkt: avg, Relative: rel,
			Throughput:    float64(time.Second) / float64(avg),
			PaperCycles:   paper[cfg].cycles,
			PaperRelative: paper[cfg].rel,
		})
	}
	return rows, nil
}

// Table3Table renders the rows in the paper's format with the published
// numbers alongside.
func Table3Table(rows []Table3Row) *Table {
	t := &Table{
		Title: "Table 3: Overall Packet Processing Time",
		Header: []string{
			"kernel", "avg/pkt", "rel overhead", "pkts/s",
			"paper cycles", "paper rel",
		},
	}
	for _, r := range rows {
		t.Add(string(r.Config), fmtDur(r.AvgPerPkt),
			fmt.Sprintf("%.2f", r.Relative), fmtRate(r.Throughput),
			fmt.Sprintf("%d", r.PaperCycles), fmt.Sprintf("%.2f", r.PaperRelative))
	}
	t.Note("absolute times differ from the 1998 P6/233 testbed; the comparison target is the relative-overhead column")
	t.Note("paper: plugin framework +8%%; DRR ~+26%% in both monolithic (ALTQ) and plugin form, with the plugin variant no slower")
	return t
}
