package bench

import (
	"fmt"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/cycles"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// nowNs is a monotonic nanosecond clock for the harness.
func nowNs() int64 { return time.Now().UnixNano() }

// GateScalePoint is one gate-count measurement.
type GateScalePoint struct {
	Gates        int
	FirstPktMem  uint64
	CachedPktMem uint64
	FirstPktNs   float64
	CachedPktNs  float64
}

// RunGateScale validates the §3.2 scalability claim: "our architecture
// is scalable to a very large number of gates since the number of gates
// matters only for the first packet arriving on a (uncached) flow". It
// sweeps the gate count and measures classification cost for the first
// packet of a flow versus a cached packet.
func RunGateScale(maxGates int) []GateScalePoint {
	if maxGates <= 0 {
		maxGates = 8
	}
	var out []GateScalePoint
	for n := 1; n <= maxGates; n++ {
		gates := make([]pcu.Type, n)
		for i := range gates {
			gates[i] = pcu.Type(uint16(pcu.TypeUser) + uint16(i))
		}
		a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, gates...)
		inst := benchInstance{}
		for _, g := range gates {
			a.Bind(g, aiu.MustParseFilter("10.0.0.0/8, *, UDP, *, *, *"), &inst, nil)
		}
		now := time.Now()
		const trials = 2000
		var firstMem, cachedMem uint64
		var firstNs, cachedNs int64
		for trial := 0; trial < trials; trial++ {
			k := pkt.Key{
				Src: pkt.AddrV4(0x0a000000 + uint32(trial+1)), Dst: pkt.AddrV4(0x14000001),
				Proto: pkt.ProtoUDP, SrcPort: uint16(trial), DstPort: 9,
			}
			p := &pkt.Packet{Key: k, KeyValid: true, OutIf: -1}
			var c1 cycles.Counter
			t0 := nowNs()
			a.LookupGate(p, gates[0], now, &c1)
			firstNs += nowNs() - t0
			firstMem += c1.Total()

			q := &pkt.Packet{Key: k, KeyValid: true, OutIf: -1}
			var c2 cycles.Counter
			t0 = nowNs()
			a.LookupGate(q, gates[0], now, &c2)
			cachedNs += nowNs() - t0
			cachedMem += c2.Total()
		}
		out = append(out, GateScalePoint{
			Gates:        n,
			FirstPktMem:  firstMem / trials,
			CachedPktMem: cachedMem / trials,
			FirstPktNs:   float64(firstNs) / trials,
			CachedPktNs:  float64(cachedNs) / trials,
		})
	}
	return out
}

// GateScaleTable renders the sweep.
func GateScaleTable(points []GateScalePoint) *Table {
	t := &Table{
		Title:  "Gate scaling (§3.2): first packet pays per gate, cached packets don't",
		Header: []string{"gates", "first-pkt accesses", "cached accesses", "first-pkt ns", "cached ns"},
	}
	for _, p := range points {
		t.Add(fmt.Sprintf("%d", p.Gates),
			fmt.Sprintf("%d", p.FirstPktMem), fmt.Sprintf("%d", p.CachedPktMem),
			fmt.Sprintf("%.0f", p.FirstPktNs), fmt.Sprintf("%.0f", p.CachedPktNs))
	}
	t.Note("shape target: first-packet columns grow ~linearly with the gate count; cached columns stay flat")
	return t
}
