package bench

import "testing"

func TestRunWireInProcess(t *testing.T) {
	res, err := RunWire(WireOptions{Packets: 500, Window: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost() != 0 {
		t.Fatalf("lost %d of %d packets: %+v", res.Lost(), res.Packets, res)
	}
	if len(res.Links) != 2 {
		t.Errorf("want 2 link snapshots, got %d", len(res.Links))
	}
	for _, li := range res.Links {
		if li.Stats.TxErrors != 0 || li.Stats.RxDropRing != 0 {
			t.Errorf("link %s saw wire trouble: %+v", li.Name, li.Stats)
		}
	}
	if WireTable(res).String() == "" {
		t.Error("empty table rendering")
	}
}

func TestRunWireWorkers(t *testing.T) {
	res, err := RunWire(WireOptions{Packets: 500, Window: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost() != 0 {
		t.Fatalf("lost %d of %d packets: %+v", res.Lost(), res.Packets, res)
	}
}
