package bench

import (
	"fmt"
	"time"

	"github.com/routerplugins/eisr"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/telemetry"
)

// PathTraceOptions parameterizes the pathtrace experiment.
type PathTraceOptions struct {
	// Packets is the number of datagrams injected at the origin router
	// (default 2000).
	Packets int
	// Sample is the origin's 1-in-N sampling rate (default 1: every
	// packet carries a context, so every delivery folds a span).
	Sample int
	// Workers sizes each router's forwarding pool.
	Workers int
}

// PathTraceResult is the pathtrace experiment outcome.
type PathTraceResult struct {
	Packets int
	Sample  int
	// Sampled is the origin's sampled-context count, Folded the
	// terminating router's span count.
	Sampled uint64
	Folded  uint64
	Elapsed time.Duration
	// Latency summarizes the terminating router's per-hop-count span
	// latency histogram (three-hop paths on the line topology).
	LatencyCount uint64
	LatencyMean  float64
	// Spans holds a few exported spans for display.
	Spans []telemetry.SpanSample
	// BadSpans counts folded spans that did not show exactly one hop
	// per router in path order — zero in a healthy run.
	BadSpans int
}

// RunPathTrace assembles a three-router line (A -> wire -> B -> wire ->
// C, with the destination local to C), originates in-band trace
// contexts at A, and reads the folded spans back at C: every delivered
// sampled packet must carry exactly one hop record per router, with the
// per-hop residencies summing to the span total.
func RunPathTrace(opts PathTraceOptions) (PathTraceResult, error) {
	if opts.Packets <= 0 {
		opts.Packets = 2000
	}
	if opts.Sample <= 0 {
		opts.Sample = 1
	}
	res := PathTraceResult{Packets: opts.Packets, Sample: opts.Sample}

	mk := func(id uint32, sample int, localAddr string) (*eisr.Router, error) {
		r, err := eisr.New(eisr.Options{
			VerifyChecksums: true, Workers: opts.Workers,
			Telemetry: true, RouterID: id, PathSample: sample,
		})
		if err != nil {
			return nil, err
		}
		if _, err := r.AddInterface(0, "lan", localAddr); err != nil {
			return nil, err
		}
		if _, err := r.AddInterface(1, "wan", ""); err != nil {
			return nil, err
		}
		if err := r.AddRoute("0.0.0.0/0 dev 1"); err != nil {
			return nil, err
		}
		return r, nil
	}
	a, err := mk(1, opts.Sample, "")
	if err != nil {
		return res, err
	}
	b, err := mk(2, 0, "")
	if err != nil {
		return res, err
	}
	// The destination address lives on C, so routing delivers locally
	// there and C terminates (folds) every span.
	c, err := mk(3, 0, "30.0.0.1")
	if err != nil {
		return res, err
	}
	linkA, err := a.AttachUDPLink(1, "127.0.0.1:0", "")
	if err != nil {
		return res, err
	}
	linkBIn, err := b.AttachUDPLink(0, "127.0.0.1:0", "")
	if err != nil {
		return res, err
	}
	linkBOut, err := b.AttachUDPLink(1, "127.0.0.1:0", "")
	if err != nil {
		return res, err
	}
	linkCIn, err := c.AttachUDPLink(0, "127.0.0.1:0", "")
	if err != nil {
		return res, err
	}
	if err := linkA.SetPeer(linkBIn.LocalAddr()); err != nil {
		return res, err
	}
	if err := linkBOut.SetPeer(linkCIn.LocalAddr()); err != nil {
		return res, err
	}
	for _, r := range []*eisr.Router{a, b, c} {
		r.Start()
		defer r.Stop()
	}

	pt := c.Telemetry.PathTracer()
	ingress := a.Interface(0)
	start := time.Now()
	for i := 0; i < opts.Packets; i++ {
		// Window on the terminating router's fold count so the UDP
		// links are never driven far past their rings. Wire drops mean
		// the window may never close; bound the wait.
		windowDeadline := time.Now().Add(100 * time.Millisecond)
		for uint64(i)-pt.Status().Spans >= 256 && time.Now().Before(windowDeadline) {
			time.Sleep(50 * time.Microsecond)
		}
		data, err := pathTraceDatagram(uint32(i))
		if err != nil {
			return res, err
		}
		for {
			err := ingress.Inject(data)
			if err != netdev.ErrRingFull {
				if err != nil {
					return res, fmt.Errorf("pathtrace: inject %d: %w", i, err)
				}
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	// Drain: UDP delivery is best-effort, so wait for quiescence rather
	// than an exact count.
	deadline := time.Now().Add(10 * time.Second)
	last := uint64(0)
	for time.Now().Before(deadline) {
		n := pt.Status().Spans
		if n == uint64(opts.Packets) {
			break
		}
		if n == last && n > 0 {
			break
		}
		last = n
		time.Sleep(100 * time.Millisecond)
	}
	res.Elapsed = time.Since(start)
	res.Sampled = a.Telemetry.PathTracer().Status().Sampled
	res.Folded = pt.Status().Spans

	spans := pt.SnapshotSpans(0)
	for _, s := range spans {
		ok := len(s.Hops) == 3 &&
			s.Hops[0].Router == 1 && s.Hops[1].Router == 2 && s.Hops[2].Router == 3 &&
			s.Hops[0].Verdict == "forwarded" && s.Hops[1].Verdict == "forwarded" &&
			s.Hops[2].Verdict == "delivered"
		var sum uint64
		for _, h := range s.Hops {
			sum += uint64(h.TotalNs)
		}
		if !ok || sum != s.TotalNs {
			res.BadSpans++
		}
	}
	if len(spans) > 3 {
		spans = spans[len(spans)-3:]
	}
	res.Spans = spans
	if m, ok := c.Telemetry.Find(`eisr_path_latency_ns{hops="3"}`); ok && m.Hist != nil {
		res.LatencyCount = m.Hist.Count
		res.LatencyMean = m.Hist.Mean()
	}
	return res, nil
}

// pathTraceDatagram builds one probe datagram addressed to the
// terminating router. Several source ports spread the probes over
// multiple flows (sampling is per-flow-hash; with sample=1 all hit).
func pathTraceDatagram(seq uint32) ([]byte, error) {
	payload := []byte{byte(seq >> 24), byte(seq >> 16), byte(seq >> 8), byte(seq)}
	return pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("30.0.0.1"),
		SrcPort: uint16(1000 + seq%8), DstPort: 9, Payload: payload, TTL: 64,
	})
}

// PathTraceTable renders the pathtrace experiment result.
func PathTraceTable(r PathTraceResult) *Table {
	t := &Table{
		Title:  "Pathtrace (eisrpath): in-band spans across a 3-router line",
		Header: []string{"metric", "value"},
	}
	t.Add("packets offered", fmt.Sprint(r.Packets))
	t.Add("origin sampling", fmt.Sprintf("1-in-%d", r.Sample))
	t.Add("contexts originated (A)", fmt.Sprint(r.Sampled))
	t.Add("spans folded (C)", fmt.Sprint(r.Folded))
	t.Add("malformed spans", fmt.Sprint(r.BadSpans))
	t.Add("3-hop latency", fmt.Sprintf("n=%d mean=%.0fns", r.LatencyCount, r.LatencyMean))
	t.Add("elapsed", r.Elapsed.Round(time.Millisecond).String())
	for _, s := range r.Spans {
		hops := ""
		for i, h := range s.Hops {
			if i > 0 {
				hops += " > "
			}
			hops += fmt.Sprintf("r%d[w%d g%02x %s q=%dns t=%dns]",
				h.Router, h.Worker, h.Gates, h.Verdict, h.QueueNs, h.TotalNs)
		}
		t.Add(fmt.Sprintf("  span %s", s.TraceID), fmt.Sprintf("%s total=%dns", hops, s.TotalNs))
	}
	t.Note("every span must show exactly one hop per router (A=1, B=2, C=3) with hop residencies summing to the span total")
	t.Note("UDP links are best-effort: folded < offered means wire drops, not lost spans")
	return t
}
