package bench

import (
	"fmt"
	"math/rand"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/cycles"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/trafficgen"
)

// Table2Result is one (family, filter count) measurement of the filter
// lookup cost in memory accesses.
type Table2Result struct {
	IPv6      bool
	Filters   int
	WorstMem  uint64
	WorstFn   uint64
	AvgMem    float64
	PaperMem  int // the paper's worst-case accounting (excl. fn ptrs)
	PaperFn   int
	PaperTime string
}

// paper accounting: fnptr(BMP)=1, fnptr(hash)=1, addr = 2*log2(W)/2,
// ports = 2, edges = 6.
func paperAccesses(v6 bool) (mem, fn int) {
	return 2*bmp.WorstCaseProbes(v6) + 2 + 6, 2
}

// RunTable2 reproduces Table 2: "Memory Accesses for a Filter Lookup".
// It installs flow-like filter populations of increasing size (up to the
// paper's 50,000), classifies random packets through a BSPL-matched DAG
// with the access counter armed, and reports worst and average counts —
// which must stay at or below the paper's bound (20 for IPv4, 24 for
// IPv6) independent of the number of filters.
func RunTable2(seed int64, counts []int, v6 bool) []Table2Result {
	if counts == nil {
		counts = []int{16, 1000, 10000, 50000}
	}
	rng := rand.New(rand.NewSource(seed))
	var out []Table2Result
	for _, n := range counts {
		a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, pcu.TypeSched)
		inst := benchInstance{}
		for _, f := range trafficgen.FlowLikeFilters(rng, n, v6) {
			a.Bind(pcu.TypeSched, f, &inst, nil)
		}
		keys := trafficgen.RandomKeys(rng, 2000, v6)
		// Mix in keys that actually match installed host filters so
		// deep DAG paths are exercised.
		ft, _ := a.Table(pcu.TypeSched)
		for i, rec := range ft.Records() {
			if i >= 1000 {
				break
			}
			f := rec.Filter
			if !f.Src.Wild && f.Src.Prefix.IsHost() {
				k := pkt.Key{Src: f.Src.Prefix.Addr, Proto: f.Proto.Value}
				if !f.Dst.Wild {
					k.Dst = f.Dst.Prefix.Addr
				}
				k.SrcPort, k.DstPort = f.SrcPort.Lo, f.DstPort.Lo
				keys = append(keys, k)
			}
		}
		var worstMem, worstFn, totalMem uint64
		for _, k := range keys {
			var c cycles.Counter
			a.ClassifyKey(pcu.TypeSched, k, &c)
			if c.Mem > worstMem {
				worstMem = c.Mem
			}
			if c.FnPtr > worstFn {
				worstFn = c.FnPtr
			}
			totalMem += c.Mem
		}
		pm, pf := paperAccesses(v6)
		out = append(out, Table2Result{
			IPv6: v6, Filters: n,
			WorstMem: worstMem, WorstFn: worstFn + 1, // + the flow-table hash fn ptr of the paper's accounting
			AvgMem:   float64(totalMem) / float64(len(keys)),
			PaperMem: pm, PaperFn: pf,
		})
	}
	return out
}

// Table2Table renders results in the paper's row structure.
func Table2Table(v4, v6 []Table2Result) *Table {
	t := &Table{
		Title:  "Table 2: Memory Accesses for a Filter Lookup (worst case, BSPL matcher)",
		Header: []string{"filters", "family", "measured worst", "measured avg", "paper bound", "within bound"},
	}
	add := func(rs []Table2Result, fam string) {
		for _, r := range rs {
			total := r.WorstMem + r.WorstFn
			bound := r.PaperMem + r.PaperFn
			t.Add(
				fmt.Sprintf("%d", r.Filters), fam,
				fmt.Sprintf("%d", total),
				fmt.Sprintf("%.1f", r.AvgMem+float64(r.WorstFn)),
				fmt.Sprintf("%d", bound),
				fmt.Sprintf("%v", total <= uint64(bound)),
			)
		}
	}
	add(v4, "IPv4")
	add(v6, "IPv6")
	t.Note("paper accounting: 1 BMP fn ptr + 1 hash fn ptr + 2*log2(W) address probes + 2 port lookups + 6 DAG edges = 20 (IPv4) / 24 (IPv6)")
	t.Note("the count is independent of the number of installed filters — the paper's central claim for the DAG classifier")
	return t
}

// Table2Breakdown reproduces the paper's per-row accounting for the
// worst case at one population size.
func Table2Breakdown(v6 bool) *Table {
	fam := "IPv4"
	w := 32
	if v6 {
		fam, w = "IPv6", 128
	}
	probes := bmp.WorstCaseProbes(v6)
	t := &Table{
		Title:  fmt.Sprintf("Table 2 breakdown (%s, %d-bit addresses)", fam, w),
		Header: []string{"component", "accesses"},
	}
	t.Add("Access to function pointer for BMP function", "1")
	t.Add("Access to function pointer for index hash", "1")
	t.Add(fmt.Sprintf("IP address lookup (2*log2(%d))", w), fmt.Sprintf("%d", 2*probes))
	t.Add("Port number lookup", "2")
	t.Add("Access to DAG edges", "6")
	t.Add("Total", fmt.Sprintf("%d", 2+2*probes+2+6))
	return t
}

// benchInstance is a no-op instance for classifier-only experiments.
type benchInstance struct{}

func (benchInstance) InstanceName() string { return "bench" }
func (benchInstance) HandlePacket(p *pkt.Packet) error {
	return nil
}
