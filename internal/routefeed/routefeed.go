// Package routefeed is the route-feed daemon: the user-space process
// that streams route updates into the forwarding table at full-table
// scale. Where ripd speaks a routing protocol, routefeed is the
// plumbing underneath any route producer — a full-table dump file, a
// live line-protocol socket, or the in-process route daemon pushing
// through a Sink — and its job is mechanical sympathy with the FIB:
// coalesce updates to the last operation per prefix, apply them in
// batches so one snapshot is published per batch rather than per route,
// sweep stale routes on end-of-RIB markers, and account for all of it
// (eisr_fib_feed_* metrics, feed-connect/loss/resync journal events).
//
// The line protocol, shared by dump files and sockets:
//
//	add PREFIX dev N [via GW] [metric M]
//	PREFIX dev N [via GW] [metric M]     (bare route spec: add)
//	del PREFIX
//	eor                                  (end of RIB: sweep stale routes)
//	# comment
//
// Each source owns the routes it installed. An eor marker declares the
// stream state complete: every owned route not refreshed since the
// stream (re)connected or the previous eor is withdrawn in one batch —
// the mark-and-sweep resync that lets a feed restart without leaking
// ghost routes into the table. Dump files that end without an explicit
// eor get an implicit one at EOF, so a full-table load converges and is
// measured (eisr_fib_convergence_ns) without trailer discipline.
package routefeed

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
	"github.com/routerplugins/eisr/internal/telemetry"
)

// OpKind discriminates feed operations.
type OpKind uint8

// The operation kinds a Source emits.
const (
	// OpAdd announces Route.
	OpAdd OpKind = iota
	// OpDel withdraws Prefix.
	OpDel
	// OpEOR marks end-of-RIB: the stream's table view is complete and
	// unrefreshed owned routes are swept.
	OpEOR
	// OpConnect reports the stream is up (emitted once per successful
	// connection, before any route ops).
	OpConnect
	// OpBad counts an unparseable line without killing the stream.
	OpBad
)

// Op is one operation emitted by a feed source.
type Op struct {
	Kind   OpKind
	Route  routing.Route // OpAdd
	Prefix pkt.Prefix    // OpDel
}

// Source is a pluggable route producer. Run streams operations into
// emit until the stream ends or done closes, returning nil for a clean
// end of stream. The daemon calls Run again (with backoff) unless the
// source is oneshot. emit is safe to call only from within Run.
type Source interface {
	Name() string
	Run(done <-chan struct{}, emit func(Op)) error
	// Oneshot sources (dump files) run once and are not reconnected;
	// their whole stream is treated as a single batch, flushed at
	// eor/EOF — the bulk-load path.
	Oneshot() bool
}

// Options configures a Daemon.
type Options struct {
	// BatchMax flushes a live source's pending batch when it reaches
	// this many coalesced operations (0 = 1024). Oneshot sources ignore
	// it and flush only at eor/EOF.
	BatchMax int
	// FlushEvery is the timer flush interval for live sources whose
	// pending batch has not reached BatchMax (0 = 50ms).
	FlushEvery time.Duration
	// Backoff is the base reconnect delay for live sources, doubling to
	// 8x while connections keep failing (0 = 500ms).
	Backoff time.Duration
	// Telemetry attaches the eisr_fib_feed_* metric family and the feed
	// journal events. Nil records nothing.
	Telemetry *telemetry.Telemetry
	// Clock overrides the time source (tests).
	Clock func() time.Time
}

// Daemon owns the feed sources for one forwarding table.
type Daemon struct {
	table      *routing.Table
	tel        *telemetry.Telemetry
	batchMax   int
	flushEvery time.Duration
	backoff    time.Duration
	now        func() time.Time

	mu      sync.Mutex
	states  []*state
	started bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// state is the daemon-side bookkeeping for one source (or sink).
type state struct {
	src      Source // nil for push sinks
	name     string
	met      *telemetry.FeedMetrics
	batchMax int // 0 = flush only at eor/stream end

	mu      sync.Mutex
	pending []Op                    // arrival order, one slot per prefix
	idx     map[pkt.Prefix]int      // prefix -> pending slot (last op wins)
	owned   map[pkt.Prefix]struct{} // routes this source installed
	seen    map[pkt.Prefix]struct{} // refreshed since the resync epoch began
	// resyncStart anchors the convergence measurement: stream connect
	// or the previous eor.
	resyncStart time.Time
	connected   bool
	sawConnect  bool // this Run call got an OpConnect
	lastErr     string

	batches, adds, withdraws, swept, resyncs, badLines uint64
}

// SourceStatus is one source's row in the "pmgr feed" payload.
type SourceStatus struct {
	Name      string `json:"name"`
	Connected bool   `json:"connected"`
	Routes    int    `json:"routes"`
	Pending   int    `json:"pending"`
	Batches   uint64 `json:"batches"`
	Adds      uint64 `json:"adds"`
	Withdraws uint64 `json:"withdraws"`
	Swept     uint64 `json:"swept"`
	Resyncs   uint64 `json:"resyncs"`
	BadLines  uint64 `json:"bad_lines,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// New builds a feed daemon over a forwarding table.
func New(table *routing.Table, opts Options) *Daemon {
	d := &Daemon{
		table:      table,
		tel:        opts.Telemetry,
		batchMax:   opts.BatchMax,
		flushEvery: opts.FlushEvery,
		backoff:    opts.Backoff,
		now:        opts.Clock,
	}
	if d.batchMax <= 0 {
		d.batchMax = 1024
	}
	if d.flushEvery <= 0 {
		d.flushEvery = 50 * time.Millisecond
	}
	if d.backoff <= 0 {
		d.backoff = 500 * time.Millisecond
	}
	if d.now == nil {
		d.now = time.Now
	}
	return d
}

func (d *Daemon) journal() *telemetry.Journal { return d.tel.Journal() }

func (d *Daemon) addState(name string, src Source) *state {
	st := &state{
		src:         src,
		name:        name,
		met:         d.tel.FeedMetrics(name),
		batchMax:    d.batchMax,
		idx:         make(map[pkt.Prefix]int),
		owned:       make(map[pkt.Prefix]struct{}),
		resyncStart: d.now(),
	}
	if src != nil && src.Oneshot() {
		st.batchMax = 0
	}
	d.mu.Lock()
	d.states = append(d.states, st)
	started := d.started
	d.mu.Unlock()
	if started && src != nil {
		d.wg.Add(1)
		go d.runSource(st)
	}
	return st
}

// AddSource registers a source. Sources added after Start begin
// streaming immediately.
func (d *Daemon) AddSource(src Source) {
	d.addState(src.Name(), src)
}

// AddSpec registers a source by its eisrd flag syntax:
// "file:PATH" (oneshot full-table dump) or "tcp:HOST:PORT" (live
// line-protocol stream with reconnect).
func (d *Daemon) AddSpec(spec string) error {
	switch {
	case strings.HasPrefix(spec, "file:"):
		d.AddSource(FileSource{Path: strings.TrimPrefix(spec, "file:")})
	case strings.HasPrefix(spec, "tcp:"):
		d.AddSource(SocketSource{Addr: strings.TrimPrefix(spec, "tcp:")})
	default:
		return fmt.Errorf("routefeed: unknown feed spec %q (want file:PATH or tcp:HOST:PORT)", spec)
	}
	return nil
}

// Start launches the source goroutines and the timer flusher.
func (d *Daemon) Start() {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.done = make(chan struct{})
	states := append([]*state(nil), d.states...)
	d.mu.Unlock()
	for _, st := range states {
		if st.src == nil {
			continue
		}
		d.wg.Add(1)
		go d.runSource(st)
	}
	d.wg.Add(1)
	go d.flushLoop()
}

// Stop winds the daemon down: sources are interrupted, remaining
// pending batches are flushed, goroutines joined. Idempotent.
func (d *Daemon) Stop() {
	d.mu.Lock()
	if !d.started {
		d.mu.Unlock()
		return
	}
	d.started = false
	done := d.done
	d.mu.Unlock()
	close(done)
	d.wg.Wait()
	d.Flush()
}

// Flush force-flushes every source's pending batch (shutdown, tests).
func (d *Daemon) Flush() {
	for _, st := range d.snapshotStates() {
		st.mu.Lock()
		d.flushLocked(st)
		st.mu.Unlock()
	}
}

// Status reports per-source feed state, sorted by name.
func (d *Daemon) Status() []SourceStatus {
	var out []SourceStatus
	for _, st := range d.snapshotStates() {
		st.mu.Lock()
		out = append(out, SourceStatus{
			Name: st.name, Connected: st.connected,
			Routes: len(st.owned), Pending: len(st.pending),
			Batches: st.batches, Adds: st.adds, Withdraws: st.withdraws,
			Swept: st.swept, Resyncs: st.resyncs, BadLines: st.badLines,
			LastError: st.lastErr,
		})
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (d *Daemon) snapshotStates() []*state {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*state(nil), d.states...)
}

// flushLoop is the timer flusher for live sources: a pending batch that
// has not reached BatchMax still reaches the table within FlushEvery.
func (d *Daemon) flushLoop() {
	defer d.wg.Done()
	t := time.NewTicker(d.flushEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			for _, st := range d.snapshotStates() {
				st.mu.Lock()
				// batchMax 0 = oneshot bulk load mid-stream: the whole
				// dump is one batch, the timer must not split it.
				if st.batchMax > 0 {
					d.flushLocked(st)
				}
				st.mu.Unlock()
			}
		case <-d.done:
			return
		}
	}
}

// runSource drives one live (or oneshot) source: run, flush the
// remainder, journal the loss, back off, reconnect.
func (d *Daemon) runSource(st *state) {
	defer d.wg.Done()
	backoff := d.backoff
	for {
		select {
		case <-d.done:
			return
		default:
		}
		st.mu.Lock()
		st.sawConnect = false
		st.mu.Unlock()
		err := st.src.Run(d.done, func(op Op) { d.emit(st, op) })
		st.mu.Lock()
		d.flushLocked(st)
		wasUp := st.sawConnect
		st.connected = false
		if err != nil {
			st.lastErr = err.Error()
		}
		st.mu.Unlock()
		if wasUp && !st.src.Oneshot() {
			d.journal().Record(telemetry.EvFeedLoss, st.name)
		}
		if st.src.Oneshot() {
			return
		}
		if wasUp {
			backoff = d.backoff
		} else if backoff < 8*d.backoff {
			backoff *= 2
		}
		select {
		case <-d.done:
			return
		case <-time.After(backoff):
		}
	}
}

// emit ingests one operation from a source or sink.
func (d *Daemon) emit(st *state, op Op) {
	switch op.Kind {
	case OpConnect:
		st.mu.Lock()
		st.connected = true
		st.sawConnect = true
		st.lastErr = ""
		st.resyncStart = d.now()
		st.seen = make(map[pkt.Prefix]struct{}, len(st.owned))
		st.mu.Unlock()
		st.met.RecordConnect()
		d.journal().Record(telemetry.EvFeedConnect, st.name)
	case OpBad:
		st.mu.Lock()
		st.badLines++
		st.mu.Unlock()
	case OpAdd, OpDel:
		st.mu.Lock()
		var p pkt.Prefix
		if op.Kind == OpAdd {
			p = pkt.PrefixFrom(op.Route.Prefix.Addr, op.Route.Prefix.Len)
			op.Route.Prefix = p
		} else {
			p = pkt.PrefixFrom(op.Prefix.Addr, op.Prefix.Len)
			op.Prefix = p
		}
		if i, ok := st.idx[p]; ok {
			st.pending[i] = op
		} else {
			st.idx[p] = len(st.pending)
			st.pending = append(st.pending, op)
		}
		if st.batchMax > 0 && len(st.pending) >= st.batchMax {
			d.flushLocked(st)
		}
		st.mu.Unlock()
	case OpEOR:
		st.mu.Lock()
		d.flushLocked(st)
		d.sweepLocked(st)
		st.mu.Unlock()
	}
}

// flushLocked applies the pending batch — one ApplyBatch call, one
// snapshot publication — and updates ownership. Called with st.mu held;
// the lock order state.mu -> Table.mu is fixed (the table never calls
// back into the feed).
func (d *Daemon) flushLocked(st *state) {
	if len(st.pending) == 0 {
		return
	}
	adds := make([]routing.Route, 0, len(st.pending))
	var dels []pkt.Prefix
	for _, op := range st.pending {
		if op.Kind == OpAdd {
			adds = append(adds, op.Route)
		} else {
			dels = append(dels, op.Prefix)
		}
	}
	st.pending = st.pending[:0]
	clear(st.idx)
	d.table.ApplyBatch(adds, dels)
	for _, rt := range adds {
		st.owned[rt.Prefix] = struct{}{}
		if st.seen != nil {
			st.seen[rt.Prefix] = struct{}{}
		}
	}
	for _, p := range dels {
		delete(st.owned, p)
		delete(st.seen, p)
	}
	st.batches++
	st.adds += uint64(len(adds))
	st.withdraws += uint64(len(dels))
	st.met.RecordBatch(len(adds), len(dels), len(st.owned))
}

// sweepLocked is the end-of-RIB resync: every owned route not refreshed
// this epoch is withdrawn in one batch, and the epoch restarts. The
// elapsed time since the epoch began is the stream's convergence
// latency. Called with st.mu held.
func (d *Daemon) sweepLocked(st *state) {
	var dels []pkt.Prefix
	for p := range st.owned {
		if _, ok := st.seen[p]; !ok {
			dels = append(dels, p)
		}
	}
	if len(dels) > 0 {
		d.table.ApplyBatch(nil, dels)
		for _, p := range dels {
			delete(st.owned, p)
		}
	}
	st.resyncs++
	st.swept += uint64(len(dels))
	st.withdraws += uint64(len(dels))
	st.met.RecordResync(len(dels), len(st.owned), uint64(d.now().Sub(st.resyncStart)))
	d.journal().Record(telemetry.EvFeedResync, st.name)
	st.seen = make(map[pkt.Prefix]struct{}, len(st.owned))
	st.resyncStart = d.now()
}

// Sink adapts a push-style in-process producer — the route daemon — to
// a feed source: it implements the table-programming surface ripd
// expects (Add/ApplyBatch), so RIP churn flows through the feed's
// coalescing, ownership accounting, and telemetry. Pushes flush
// immediately: the producer has already batched (one advertisement =
// one ApplyBatch), so the sink adds accounting, not latency.
type Sink struct {
	d  *Daemon
	st *state
}

// Sink registers a push source under name and returns its handle.
func (d *Daemon) Sink(name string) *Sink {
	st := d.addState(name, nil)
	st.mu.Lock()
	st.connected = true
	st.mu.Unlock()
	return &Sink{d: d, st: st}
}

// Add installs one route through the feed.
func (s *Sink) Add(p pkt.Prefix, nh routing.NextHop) {
	s.d.emit(s.st, Op{Kind: OpAdd, Route: routing.Route{Prefix: p, NextHop: nh}})
	s.flush()
}

// ApplyBatch installs adds and withdraws dels as one feed batch.
func (s *Sink) ApplyBatch(adds []routing.Route, dels []pkt.Prefix) (int, int) {
	for _, rt := range adds {
		s.d.emit(s.st, Op{Kind: OpAdd, Route: rt})
	}
	for _, p := range dels {
		s.d.emit(s.st, Op{Kind: OpDel, Prefix: p})
	}
	s.flush()
	return len(adds), len(dels)
}

func (s *Sink) flush() {
	s.st.mu.Lock()
	s.d.flushLocked(s.st)
	s.st.mu.Unlock()
}
