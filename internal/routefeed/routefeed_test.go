package routefeed

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
	"github.com/routerplugins/eisr/internal/telemetry"
)

func newTable(t *testing.T) *routing.Table {
	t.Helper()
	tbl, err := routing.New("patricia")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func ip4(a, b, c, d byte) pkt.Addr {
	return pkt.AddrV4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

func lookupIf(t *testing.T, tbl *routing.Table, addr pkt.Addr) (int32, bool) {
	t.Helper()
	nh, ok := tbl.Lookup(addr, nil)
	return nh.IfIndex, ok
}

func TestParseLine(t *testing.T) {
	cases := []struct {
		in   string
		kind OpKind
		ok   bool
		err  bool
	}{
		{"add 10.0.0.0/8 dev 1", OpAdd, true, false},
		{"10.0.0.0/8 dev 1 via 192.168.1.1 metric 5", OpAdd, true, false},
		{"del 10.0.0.0/8", OpDel, true, false},
		{"withdraw 10.0.0.0/8", OpDel, true, false},
		{"eor", OpEOR, true, false},
		{"", 0, false, false},
		{"   ", 0, false, false},
		{"# comment", 0, false, false},
		{"add not-a-prefix dev 1", 0, false, true},
		{"del", 0, false, true},
		{"bogus line", 0, false, true},
	}
	for _, c := range cases {
		op, ok, err := ParseLine(c.in)
		if (err != nil) != c.err || ok != c.ok || (ok && op.Kind != c.kind) {
			t.Errorf("ParseLine(%q) = kind %v ok %v err %v; want kind %v ok %v err %v",
				c.in, op.Kind, ok, err, c.kind, c.ok, c.err)
		}
	}
	op, _, _ := ParseLine("add 10.1.2.3/16 dev 3 via 192.168.0.1 metric 7")
	want := "10.1.0.0/16"
	if got := pkt.PrefixFrom(op.Route.Prefix.Addr, op.Route.Prefix.Len).String(); got != want {
		t.Errorf("parsed prefix = %s, want %s", got, want)
	}
	if op.Route.NextHop.IfIndex != 3 || op.Route.NextHop.Metric != 7 {
		t.Errorf("parsed next hop = %+v", op.Route.NextHop)
	}
}

// TestFileLoad loads a dump file and checks the whole table arrives as
// one batch (one feed batch, one resync) with correct routes.
func TestFileLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dump.txt")
	const n = 2000
	var buf []byte
	buf = append(buf, "# full-table dump\n"...)
	for i := 0; i < n; i++ {
		buf = append(buf, fmt.Sprintf("10.%d.%d.0/24 dev %d\n", i/256, i%256, i%8)...)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	tbl := newTable(t)
	tel := telemetry.New()
	tel.EnableJournal(0)
	d := New(tbl, Options{Telemetry: tel})
	if err := d.AddSpec("file:" + path); err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for tbl.Len() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tbl.Len() != n {
		t.Fatalf("table has %d routes, want %d", tbl.Len(), n)
	}
	if ifi, ok := lookupIf(t, tbl, ip4(10, 3, 9, 77)); !ok || ifi != int32((3*256+9)%8) {
		t.Fatalf("lookup 10.3.9.77 = dev %d ok %v", ifi, ok)
	}

	var st SourceStatus
	for _, s := range d.Status() {
		st = s
	}
	if st.Batches != 1 {
		t.Errorf("dump load took %d batches, want 1 (one snapshot publication)", st.Batches)
	}
	if st.Adds != n || st.Routes != n || st.Resyncs != 1 || st.Swept != 0 {
		t.Errorf("status = %+v", st)
	}
	// The dump got an implicit eor: connect + resync are journaled.
	evs := tel.Journal().Snapshot(0, 0)
	var connects, resyncs int
	for _, e := range evs {
		switch e.Kind {
		case telemetry.EvFeedConnect:
			connects++
		case telemetry.EvFeedResync:
			resyncs++
		}
	}
	if connects != 1 || resyncs != 1 {
		t.Errorf("journal: %d connects, %d resyncs, want 1 each", connects, resyncs)
	}
}

// TestFileBadLines checks malformed dump lines are counted, not fatal.
func TestFileBadLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dump.txt")
	body := "10.0.0.0/8 dev 1\nthis is garbage\n10.1.0.0/16 dev 2\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	tbl := newTable(t)
	d := New(tbl, Options{})
	d.AddSource(FileSource{Path: path})
	d.Start()
	defer d.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for tbl.Len() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	st := d.Status()[0]
	if tbl.Len() != 2 || st.BadLines != 1 {
		t.Fatalf("len %d badLines %d, want 2 and 1", tbl.Len(), st.BadLines)
	}
}

// fakeSource scripts a sequence of streams for resync/coalescing tests:
// each Run call plays the next op slice, then returns its error.
type fakeSource struct {
	name    string
	oneshot bool

	mu      sync.Mutex
	streams [][]Op
	errs    []error
	runs    int
	block   chan struct{} // when non-nil, Run waits on it after emitting
}

func (f *fakeSource) Name() string  { return f.name }
func (f *fakeSource) Oneshot() bool { return f.oneshot }

func (f *fakeSource) Run(done <-chan struct{}, emit func(Op)) error {
	f.mu.Lock()
	i := f.runs
	f.runs++
	var ops []Op
	var err error
	if i < len(f.streams) {
		ops = f.streams[i]
	}
	if i < len(f.errs) {
		err = f.errs[i]
	}
	block := f.block
	f.mu.Unlock()
	if i >= len(f.streams) {
		// Script exhausted: idle until the daemon stops.
		<-done
		return nil
	}
	emit(Op{Kind: OpConnect})
	for _, op := range ops {
		emit(op)
	}
	if block != nil {
		select {
		case <-block:
		case <-done:
		}
	}
	return err
}

func addOp(p string, dev int32) Op {
	pr, err := pkt.ParsePrefix(p)
	if err != nil {
		panic(err)
	}
	return Op{Kind: OpAdd, Route: routing.Route{Prefix: pr, NextHop: routing.NextHop{IfIndex: dev}}}
}

func delOp(p string) Op {
	pr, err := pkt.ParsePrefix(p)
	if err != nil {
		panic(err)
	}
	return Op{Kind: OpDel, Prefix: pr}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestResyncSweep checks the mark-and-sweep: a reconnected stream that
// no longer announces a route gets it withdrawn at eor.
func TestResyncSweep(t *testing.T) {
	tbl := newTable(t)
	src := &fakeSource{
		name: "fake",
		streams: [][]Op{
			{addOp("10.0.0.0/8", 1), addOp("10.1.0.0/16", 2), {Kind: OpEOR}},
			// Reconnect without 10.1.0.0/16: the eor must sweep it.
			{addOp("10.0.0.0/8", 1), {Kind: OpEOR}},
		},
	}
	d := New(tbl, Options{Backoff: time.Millisecond})
	d.AddSource(src)
	d.Start()
	defer d.Stop()

	waitFor(t, "second resync", func() bool {
		s := d.Status()[0]
		return s.Resyncs >= 2
	})
	if _, ok := lookupIf(t, tbl, ip4(10, 1, 2, 3)); !ok {
		// 10.1.0.0/16 is gone, but 10.0.0.0/8 still covers 10.1.2.3.
		t.Fatal("covering /8 disappeared")
	}
	if ifi, _ := lookupIf(t, tbl, ip4(10, 1, 2, 3)); ifi != 1 {
		t.Fatalf("10.1.2.3 -> dev %d, want swept to /8 (dev 1)", ifi)
	}
	s := d.Status()[0]
	if s.Swept != 1 || s.Routes != 1 {
		t.Fatalf("status = %+v, want 1 swept, 1 owned", s)
	}
}

// TestCoalescing checks same-prefix churn inside one batch collapses to
// the last operation.
func TestCoalescing(t *testing.T) {
	tbl := newTable(t)
	d := New(tbl, Options{BatchMax: 1 << 20, FlushEvery: time.Hour})
	sink := d.Sink("push")

	// Use emit directly (no auto-flush) to build up a pending batch.
	d.emit(sink.st, addOp("10.0.0.0/8", 1))
	d.emit(sink.st, delOp("10.0.0.0/8"))
	d.emit(sink.st, addOp("10.2.0.0/16", 2))
	d.emit(sink.st, addOp("10.2.0.0/16", 7))
	d.Flush()

	if _, ok := lookupIf(t, tbl, ip4(10, 0, 0, 1)); ok {
		t.Fatal("add-then-del prefix reached the table")
	}
	if ifi, ok := lookupIf(t, tbl, ip4(10, 2, 3, 4)); !ok || ifi != 7 {
		t.Fatalf("coalesced add = dev %d ok %v, want dev 7", ifi, ok)
	}
	st := d.Status()[0]
	if st.Batches != 1 || st.Adds != 1 || st.Withdraws != 1 {
		t.Fatalf("status = %+v, want 1 batch, 1 add, 1 withdraw", st)
	}
}

// TestSinkProgramsTable checks the ripd-facing sink surface.
func TestSinkProgramsTable(t *testing.T) {
	tbl := newTable(t)
	d := New(tbl, Options{})
	sink := d.Sink("rip")

	p, _ := pkt.ParsePrefix("172.16.0.0/12")
	sink.Add(p, routing.NextHop{IfIndex: 4})
	if ifi, ok := lookupIf(t, tbl, ip4(172, 20, 0, 1)); !ok || ifi != 4 {
		t.Fatalf("sink add = dev %d ok %v", ifi, ok)
	}
	sink.ApplyBatch(
		[]routing.Route{{Prefix: mustPrefix("192.168.0.0/16"), NextHop: routing.NextHop{IfIndex: 5}}},
		[]pkt.Prefix{p},
	)
	if _, ok := lookupIf(t, tbl, ip4(172, 20, 0, 1)); ok {
		t.Fatal("sink del did not withdraw")
	}
	if ifi, ok := lookupIf(t, tbl, ip4(192, 168, 1, 1)); !ok || ifi != 5 {
		t.Fatalf("sink batch add = dev %d ok %v", ifi, ok)
	}
	st := d.Status()[0]
	if !st.Connected || st.Routes != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func mustPrefix(s string) pkt.Prefix {
	p, err := pkt.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// TestSocketReconnect runs a live TCP feed through a drop and a
// reconnect, checking the routes, the resync, and the journal.
func TestSocketReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback listener: %v", err)
	}
	defer ln.Close()

	// Serve two connections: the first announces two routes and drops,
	// the second re-announces only one and stays up.
	go func() {
		c1, err := ln.Accept()
		if err != nil {
			return
		}
		fmt.Fprintf(c1, "10.0.0.0/8 dev 1\n10.9.0.0/16 dev 2\neor\n")
		c1.Close()
		c2, err := ln.Accept()
		if err != nil {
			return
		}
		fmt.Fprintf(c2, "10.0.0.0/8 dev 1\neor\n")
		// Hold c2 open until the test ends.
		buf := make([]byte, 1)
		c2.Read(buf)
		c2.Close()
	}()

	tbl := newTable(t)
	tel := telemetry.New()
	tel.EnableJournal(0)
	d := New(tbl, Options{Telemetry: tel, Backoff: 5 * time.Millisecond, FlushEvery: time.Millisecond})
	if err := d.AddSpec("tcp:" + ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Stop()

	waitFor(t, "reconnect resync", func() bool {
		s := d.Status()[0]
		return s.Resyncs >= 2
	})
	s := d.Status()[0]
	if s.Swept != 1 || s.Routes != 1 || !s.Connected {
		t.Fatalf("status = %+v", s)
	}
	if ifi, ok := lookupIf(t, tbl, ip4(10, 9, 1, 1)); !ok || ifi != 1 {
		t.Fatalf("after sweep 10.9.1.1 -> dev %d ok %v, want /8 dev 1", ifi, ok)
	}
	var connects, losses, resyncs int
	for _, e := range tel.Journal().Snapshot(0, 0) {
		switch e.Kind {
		case telemetry.EvFeedConnect:
			connects++
		case telemetry.EvFeedLoss:
			losses++
		case telemetry.EvFeedResync:
			resyncs++
		}
	}
	if connects < 2 || losses < 1 || resyncs < 2 {
		t.Fatalf("journal: connects %d losses %d resyncs %d", connects, losses, resyncs)
	}
}

// TestBatchMaxFlush checks a live source's oversized batch flushes at
// BatchMax without waiting for the timer.
func TestBatchMaxFlush(t *testing.T) {
	tbl := newTable(t)
	d := New(tbl, Options{BatchMax: 8, FlushEvery: time.Hour})
	sink := d.Sink("push")
	for i := 0; i < 8; i++ {
		d.emit(sink.st, addOp(fmt.Sprintf("10.%d.0.0/16", i), 1))
	}
	if tbl.Len() != 8 {
		t.Fatalf("table has %d routes before any explicit flush, want 8 (BatchMax)", tbl.Len())
	}
	st := d.Status()[0]
	if st.Batches != 1 {
		t.Fatalf("batches = %d, want 1", st.Batches)
	}
}

// TestStopFlushesPending checks Stop drains whatever is still queued.
func TestStopFlushesPending(t *testing.T) {
	tbl := newTable(t)
	d := New(tbl, Options{BatchMax: 1 << 20, FlushEvery: time.Hour})
	sink := d.Sink("push")
	d.Start()
	d.emit(sink.st, addOp("10.0.0.0/8", 1))
	d.Stop()
	if tbl.Len() != 1 {
		t.Fatalf("pending add lost on Stop: table has %d routes", tbl.Len())
	}
}
