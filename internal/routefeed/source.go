package routefeed

import (
	"bufio"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

// ParseLine parses one line of the feed protocol. ok is false for blank
// lines and comments; err reports a malformed operation.
func ParseLine(s string) (op Op, ok bool, err error) {
	s = strings.TrimSpace(s)
	if s == "" || strings.HasPrefix(s, "#") {
		return Op{}, false, nil
	}
	verb, rest, _ := strings.Cut(s, " ")
	switch verb {
	case "eor":
		return Op{Kind: OpEOR}, true, nil
	case "del", "withdraw":
		p, err := pkt.ParsePrefix(strings.TrimSpace(rest))
		if err != nil {
			return Op{}, false, err
		}
		return Op{Kind: OpDel, Prefix: p}, true, nil
	case "add":
		s = rest
		fallthrough
	default:
		// A bare route spec is an add — the dump-file format is exactly
		// the static-route syntax, one route per line.
		rt, err := routing.ParseRoute(s)
		if err != nil {
			return Op{}, false, err
		}
		return Op{Kind: OpAdd, Route: rt}, true, nil
	}
}

// scanOps reads the line protocol from r, emitting parsed operations.
// Malformed lines become OpBad (counted, stream survives). Checks done
// every 1024 lines so a multi-million-line load stays interruptible.
func scanOps(r io.Reader, done <-chan struct{}, emit func(Op)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	n := 0
	for sc.Scan() {
		if n++; n&1023 == 0 {
			select {
			case <-done:
				return nil
			default:
			}
		}
		op, ok, err := ParseLine(sc.Text())
		if err != nil {
			emit(Op{Kind: OpBad})
			continue
		}
		if ok {
			emit(op)
		}
	}
	return sc.Err()
}

// FileSource streams a route dump file once — the full-table load path.
// The whole file is one batch: the daemon flushes it at eor (implicit
// at EOF when the dump has no trailer), publishing one snapshot for the
// entire table.
type FileSource struct {
	Path string
}

// Name labels the source's telemetry and journal events.
func (f FileSource) Name() string { return "file:" + f.Path }

// Oneshot reports that a dump runs once and is not reconnected.
func (f FileSource) Oneshot() bool { return true }

// Run streams the dump.
func (f FileSource) Run(done <-chan struct{}, emit func(Op)) error {
	fh, err := os.Open(f.Path)
	if err != nil {
		return err
	}
	defer fh.Close()
	emit(Op{Kind: OpConnect})
	sawEOR := false
	err = scanOps(fh, done, func(op Op) {
		if op.Kind == OpEOR {
			sawEOR = true
		}
		emit(op)
	})
	if err == nil && !sawEOR {
		emit(Op{Kind: OpEOR})
	}
	return err
}

// SocketSource streams the line protocol from a TCP endpoint — the live
// feed path. The daemon reconnects with backoff when the stream drops;
// on reconnect the mark-and-sweep resync (keyed on the peer's eor)
// clears whatever the previous connection installed that the new one
// does not re-announce.
type SocketSource struct {
	Addr string
	// Dial overrides the connector (tests). Nil dials TCP with a 5s
	// timeout.
	Dial func(addr string) (net.Conn, error)
}

// Name labels the source's telemetry and journal events.
func (s SocketSource) Name() string { return "tcp:" + s.Addr }

// Oneshot reports that a live stream is reconnected, not oneshot.
func (s SocketSource) Oneshot() bool { return false }

// Run dials and streams until the connection drops or done closes.
func (s SocketSource) Run(done <-chan struct{}, emit func(Op)) error {
	dial := s.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	conn, err := dial(s.Addr)
	if err != nil {
		return err
	}
	// Unblock the read loop when the daemon stops: closing the
	// connection is the only portable way to interrupt a blocked Read.
	stopped := make(chan struct{})
	defer close(stopped)
	go func() {
		select {
		case <-done:
			conn.Close()
		case <-stopped:
		}
	}()
	defer conn.Close()
	emit(Op{Kind: OpConnect})
	return scanOps(conn, done, emit)
}
