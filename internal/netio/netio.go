// Package netio backs netdev interfaces with real OS sockets — the
// driver layer that turns the simulated router into a daemon serving
// actual traffic. The first (and currently only) transport is the UDP
// overlay link: the interface binds a local UDP socket and every
// egress IP datagram is carried verbatim as the payload of one UDP
// datagram to a configured peer, so two eisrd processes forward real
// packets to each other over loopback or a LAN with zero privileges.
//
// The design follows the cost structure identified by the software
// router literature (batching, buffer pooling, backpressure at the I/O
// boundary):
//
//   - RX: one goroutine per link does batched socket reads — a blocking
//     read opens each batch, then short-deadline reads drain the socket
//     up to the batch cap — into a preallocated ring of receive slots
//     (buffer + embedded packet header), so the steady-state receive
//     path allocates nothing per packet. The slot ring is sized from
//     the interface's buffer depth (RX ring + worker-queue reserve)
//     plus slack, giving wire packets the same recycling contract as
//     the in-memory mbuf pool.
//   - TX: Transmit hands egress packets to the driver, which copies
//     them into a fixed pool of wire buffers and queues them for a
//     drain goroutine. The handoff is non-blocking: when the TX ring is
//     full the packet is dropped and counted (netdev.ErrRingFull) —
//     wire backpressure never blocks a forwarding worker.
//   - Lifecycle: links start and stop with Router.Start/Stop. Stop
//     closes the socket to unblock the RX read and joins both
//     goroutines before returning, so sockets close cleanly and the
//     epoch reclaimer can still quiesce.
package netio

import "time"

// Defaults for Config zero values.
const (
	// DefaultTxRing is the wire-buffer count of the TX path (the depth
	// of backpressure before egress drops).
	DefaultTxRing = 512
	// DefaultBatch caps how many datagrams one RX wakeup drains.
	DefaultBatch = 64
	// DefaultPoolSlack is the extra RX slots beyond the interface's
	// buffer depth: covers the interface's out FIFO plus packets in
	// hand between poll and dispatch.
	DefaultPoolSlack = 1088
	// batchDrainWindow is the read deadline applied after the blocking
	// batch-head read: how long the RX loop lingers for the rest of a
	// batch before declaring the socket dry.
	batchDrainWindow = 500 * time.Microsecond
)
