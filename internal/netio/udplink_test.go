package netio

import (
	"errors"
	"net"
	"net/netip"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/telemetry"
)

func buildUDP(t testing.TB, payload []byte) []byte {
	t.Helper()
	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("10.0.0.2"),
		SrcPort: 1111, DstPort: 2222, Payload: payload, TTL: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// newLink builds a loopback-bound link on a fresh interface.
func newLink(t testing.TB, ifcCfg netdev.Config, cfg Config) (*netdev.Interface, *UDPLink) {
	t.Helper()
	ifc := netdev.NewInterface(0, ifcCfg)
	if cfg.Local == "" {
		cfg.Local = "127.0.0.1:0"
	}
	l, err := NewUDPLink(ifc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Stop)
	return ifc, l
}

// dialTo returns a socket aimed at the link's local address.
func dialTo(t testing.TB, l *UDPLink) *net.UDPConn {
	t.Helper()
	raddr, err := net.ResolveUDPAddr("udp", l.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	c, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// pollFor drains the interface ring until a packet appears or the
// deadline passes.
func pollFor(ifc *netdev.Interface, d time.Duration) *pkt.Packet {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if p := ifc.Poll(); p != nil {
			return p
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

func TestRxDeliversWirePackets(t *testing.T) {
	ifc, l := newLink(t, netdev.Config{}, Config{})
	l.Start()
	src := dialTo(t, l)

	data := buildUDP(t, []byte("over-the-wire"))
	if _, err := src.Write(data); err != nil {
		t.Fatal(err)
	}
	p := pollFor(ifc, 2*time.Second)
	if p == nil {
		t.Fatal("wire packet never reached the RX ring")
	}
	if string(p.Data) != string(data) {
		t.Error("payload corrupted in flight")
	}
	if !p.KeyValid || p.Key.Proto != pkt.ProtoUDP || p.Key.SrcPort != 1111 {
		t.Errorf("key not extracted on RX: %+v", p.Key)
	}
	if p.InIf != ifc.Index || p.OutIf != -1 || p.Stamp.IsZero() {
		t.Errorf("packet metadata: InIf=%d OutIf=%d stamp=%v", p.InIf, p.OutIf, p.Stamp)
	}
	// The batch counter records when the batch closes (after the drain
	// window), a moment after delivery.
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Batches == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s := l.Stats(); s.RxPackets != 1 || s.RxBytes != uint64(len(data)) || s.Batches == 0 || s.AvgBatch != 1 {
		t.Errorf("link stats: %+v", s)
	}
	if s := ifc.Stats(); s.RxPackets != 1 {
		t.Errorf("iface stats: %+v", s)
	}
}

func TestRxDropsMalformedAndOversize(t *testing.T) {
	_, l := newLink(t, netdev.Config{MTU: 256}, Config{})
	l.Start()
	src := dialTo(t, l)

	if _, err := src.Write([]byte{0xff, 0x01, 0x02}); err != nil { // bad version
		t.Fatal(err)
	}
	if _, err := src.Write(make([]byte, 300)); err != nil { // beyond MTU
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s := l.Stats()
		if s.RxDropMalformed == 1 && s.RxDropTooBig == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("drop counters never settled: %+v", l.Stats())
}

func TestRxRingFullCountsDrop(t *testing.T) {
	ifc, l := newLink(t, netdev.Config{RxRing: 1}, Config{})
	l.Start()
	src := dialTo(t, l)

	data := buildUDP(t, []byte("x"))
	const sent = 8
	for range [sent]struct{}{} {
		if _, err := src.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s := l.Stats()
		if s.RxPackets+s.RxDropRing == sent {
			if s.RxDropRing == 0 {
				t.Fatalf("ring of 1 absorbed %d packets without a drop", sent)
			}
			if ifc.RxLen() != 1 {
				t.Errorf("ring occupancy = %d, want 1", ifc.RxLen())
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("RX never drained the burst: %+v", l.Stats())
}

func TestTransmitWireReachesPeer(t *testing.T) {
	ifc, l := newLink(t, netdev.Config{}, Config{})
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := l.SetPeer(sink.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	l.Start()

	data := buildUDP(t, []byte("egress"))
	// Through the interface: Transmit routes to the attached driver.
	ifc.AttachDriver(l)
	if err := ifc.Transmit(&pkt.Packet{Data: data}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	sink.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := sink.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != string(data) {
		t.Error("wire payload differs from the transmitted datagram")
	}
	deadline := time.Now().Add(time.Second)
	for l.Stats().TxPackets == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s := l.Stats(); s.TxPackets != 1 || s.TxBytes != uint64(len(data)) {
		t.Errorf("link TX stats: %+v", s)
	}
	if s := ifc.Stats(); s.TxPackets != 1 {
		t.Errorf("iface TX stats: %+v", s)
	}
}

func TestTransmitWireBackpressure(t *testing.T) {
	// Tiny TX ring, link not started: the drain goroutine never runs, so
	// the pool exhausts and further transmits must fail fast, not block.
	_, l := newLink(t, netdev.Config{}, Config{TxRing: 2})
	data := buildUDP(t, []byte("x"))
	p := &pkt.Packet{Data: data}
	for i := 0; i < 2; i++ {
		if err := l.TransmitWire(p); err != nil {
			t.Fatalf("transmit %d: %v", i, err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- l.TransmitWire(p) }()
	select {
	case err := <-done:
		if err != netdev.ErrRingFull {
			t.Fatalf("full TX ring error = %v, want ErrRingFull", err)
		}
	case <-time.After(time.Second):
		t.Fatal("TransmitWire blocked on a full TX ring")
	}
	if s := l.Stats(); s.TxDropRing != 1 {
		t.Errorf("TX drop not counted: %+v", s)
	}
}

func TestNoPeerCountsTxError(t *testing.T) {
	_, l := newLink(t, netdev.Config{}, Config{})
	l.Start()
	if err := l.TransmitWire(&pkt.Packet{Data: buildUDP(t, []byte("x"))}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().TxErrors == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s := l.Stats(); s.TxErrors != 1 || s.TxPackets != 0 {
		t.Errorf("peerless transmit stats: %+v", s)
	}
}

func TestLifecycleIdempotent(t *testing.T) {
	_, l := newLink(t, netdev.Config{}, Config{})
	l.Start()
	l.Start()
	stopped := make(chan struct{})
	go func() {
		l.Stop()
		l.Stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not join the I/O goroutines")
	}
	if l.LinkInfo().Running {
		t.Error("link still reports running after Stop")
	}
}

func TestStopWithoutStart(t *testing.T) {
	_, l := newLink(t, netdev.Config{}, Config{})
	l.Stop() // must not hang or panic
}

func TestLinkInfo(t *testing.T) {
	ifc, l := newLink(t, netdev.Config{Name: "wan0"}, Config{Peer: "127.0.0.1:9999"})
	l.Start()
	info := l.LinkInfo()
	if info.Iface != ifc.Index || info.Name != "wan0" || info.Kind != "udp" {
		t.Errorf("LinkInfo identity: %+v", info)
	}
	if info.Peer != "127.0.0.1:9999" {
		t.Errorf("peer = %q", info.Peer)
	}
	if !strings.HasPrefix(info.Local, "127.0.0.1:") || strings.HasSuffix(info.Local, ":0") {
		t.Errorf("local = %q, want a resolved loopback port", info.Local)
	}
	if !info.Running {
		t.Error("running link reports Running=false")
	}
}

func TestHostnamePeerResolves(t *testing.T) {
	_, l := newLink(t, netdev.Config{}, Config{})
	if err := l.SetPeer("localhost:4242"); err != nil {
		t.Fatalf("hostname peer rejected: %v", err)
	}
	if err := l.SetPeer("not an address"); err == nil {
		t.Error("garbage peer accepted")
	}
}

// TestRxSurvivesTransientReadErrors is the regression for the RX loop
// dying on a transient socket error (e.g. ICMP port-unreachable
// surfacing as ECONNREFUSED on a connected UDP socket): injected
// transient errors must be counted and journaled once per burst, the
// loop must keep reading and delivering, and only net.ErrClosed — the
// link stopping — may end it.
func TestRxSurvivesTransientReadErrors(t *testing.T) {
	const injectErrs = 5
	tel := telemetry.New()
	jr := tel.EnableJournal(64)
	ifc, l := newLink(t, netdev.Config{Name: "flaky0"}, Config{Tel: tel})

	transient := errors.New("recvfrom: connection refused")
	inner := l.readFrom
	var injected atomic.Int64
	l.readFrom = func(b []byte) (int, netip.AddrPort, error) {
		if injected.Add(1) <= injectErrs {
			return 0, netip.AddrPort{}, transient
		}
		return inner(b)
	}
	l.Start()
	src := dialTo(t, l)

	// The RX loop eats the injected burst first (the seam fails the
	// first reads), then must still deliver a real datagram.
	data := buildUDP(t, []byte("after the storm"))
	if _, err := src.Write(data); err != nil {
		t.Fatal(err)
	}
	p := pollFor(ifc, 2*time.Second)
	if p == nil {
		t.Fatalf("RX loop never recovered from transient errors: %+v", l.Stats())
	}
	if string(p.Data) != string(data) {
		t.Error("payload corrupted after error recovery")
	}
	s := l.Stats()
	if s.RxErrTransient != injectErrs {
		t.Errorf("RxErrTransient = %d, want %d", s.RxErrTransient, injectErrs)
	}
	if got := tel.CounterValue(`eisr_netio_rx_errors_total{iface="flaky0"}`); got != injectErrs {
		t.Errorf("eisr_netio_rx_errors_total = %d, want %d", got, injectErrs)
	}
	// The injected errors are back to back — one burst, one journal
	// entry, not one per error.
	bursts := 0
	for _, ev := range jr.Snapshot(0, 64) {
		if ev.Kind == telemetry.EvRxErrBurst {
			bursts++
			if !strings.Contains(ev.Detail, "flaky0") || !strings.Contains(ev.Detail, "refused") {
				t.Errorf("burst event detail = %q, want link name and error", ev.Detail)
			}
		}
	}
	if bursts != 1 {
		t.Errorf("journaled %d rx-error bursts, want 1", bursts)
	}

	// net.ErrClosed must still end the loop: Stop joins the RX
	// goroutine, so a loop that treats ErrClosed as transient hangs here.
	stopped := make(chan struct{})
	go func() { l.Stop(); close(stopped) }()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("RX loop did not exit on net.ErrClosed")
	}
}

// TestRxDropSplitBadPathVsBadKey pins the split of the old malformed
// counter: a corrupt path-trace encapsulation and an unparseable bare
// datagram are different failures with different counters, and the
// compat RxDropMalformed field is their sum.
func TestRxDropSplitBadPathVsBadKey(t *testing.T) {
	tel := telemetry.New()
	_, l := newLink(t, netdev.Config{Name: "wan1"}, Config{Tel: tel})
	l.Start()
	src := dialTo(t, l)

	// Path magic with a truncated header: DecodePath fails → bad-path.
	if _, err := src.Write([]byte{pkt.PathMagic, pkt.PathVersion, 0x00, 0x01}); err != nil {
		t.Fatal(err)
	}
	// No encapsulation, bogus IP version: key extraction fails → bad-key.
	if _, err := src.Write([]byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s := l.Stats()
		if s.RxDropBadPath == 1 && s.RxDropBadKey == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	s := l.Stats()
	if s.RxDropBadPath != 1 || s.RxDropBadKey != 1 {
		t.Fatalf("drop split never settled: %+v", s)
	}
	if s.RxDropMalformed != 2 {
		t.Errorf("RxDropMalformed = %d, want the sum 2", s.RxDropMalformed)
	}
	if got := tel.CounterValue(`eisr_netio_drops_total{iface="wan1",dir="rx",reason="bad-path"}`); got != 1 {
		t.Errorf("bad-path counter = %d, want 1", got)
	}
	if got := tel.CounterValue(`eisr_netio_drops_total{iface="wan1",dir="rx",reason="bad-key"}`); got != 1 {
		t.Errorf("bad-key counter = %d, want 1", got)
	}
}

func TestTelemetryRegistersNetioFamilies(t *testing.T) {
	tel := telemetry.New()
	_, l := newLink(t, netdev.Config{Name: "wan0"}, Config{Tel: tel})
	l.Start()
	src := dialTo(t, l)
	if _, err := src.Write(buildUDP(t, []byte("metered"))); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if tel.CounterValue(`eisr_netio_packets_total{iface="wan0",dir="rx"}`) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if n := tel.CounterValue(`eisr_netio_packets_total{iface="wan0",dir="rx"}`); n != 1 {
		t.Errorf("netio rx counter = %d, want 1", n)
	}
	var sb strings.Builder
	if err := tel.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"eisr_netio_packets_total", "eisr_netio_drops_total", "eisr_netio_rx_batch"} {
		if !strings.Contains(sb.String(), family) {
			t.Errorf("Prometheus exposition is missing %s", family)
		}
	}
}
