package netio

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/telemetry"
)

// Config parameterizes a UDP overlay link.
type Config struct {
	// Local is the bind address ("127.0.0.1:9001"; port 0 lets the OS
	// pick — read it back with LocalAddr). Required.
	Local string
	// Peer is the remote link endpoint. Optional at construction (two
	// port-0 links must exist before they can learn each other's
	// addresses); settable later with SetPeer. Egress with no peer
	// configured counts as a TX error.
	Peer string
	// TxRing is the wire-buffer count of the TX path (default
	// DefaultTxRing).
	TxRing int
	// Batch caps datagrams drained per RX wakeup (default DefaultBatch).
	Batch int
	// PoolSlack is extra RX slots beyond the interface's buffer depth
	// (default DefaultPoolSlack).
	PoolSlack int
	// Tel optionally registers the link's counters for Prometheus
	// exposition (eisr_netio_* families, labeled by interface).
	Tel *telemetry.Telemetry
}

// rxSlot is one receive descriptor: a wire buffer plus the packet
// header delivered into the router, reset in place per datagram so the
// steady-state RX path allocates nothing.
type rxSlot struct {
	buf []byte
	p   pkt.Packet
}

// wireBuf is one TX descriptor: egress bytes are copied in by the
// forwarding worker and written out by the drain goroutine. The pool
// is conserved — free and txq together always hold exactly TxRing
// buffers — so every holder must pass its buffer on (mbufown enforces
// this linearly).
//
//eisr:mbuf
type wireBuf struct {
	buf []byte
	n   int
}

// linkStats is the live counter set (atomics; the RX goroutine, TX
// drain, and forwarding workers all record concurrently).
type linkStats struct {
	rxPackets      atomic.Uint64
	rxBytes        atomic.Uint64
	rxDropRing     atomic.Uint64
	rxDropTooBig   atomic.Uint64
	rxDropBadPath  atomic.Uint64 // path-trace encapsulation failed to decode
	rxDropBadKey   atomic.Uint64 // flow-key extraction failed
	rxErrTransient atomic.Uint64 // non-fatal socket read errors (skipped)
	txPackets      atomic.Uint64
	txBytes        atomic.Uint64
	txDropRing     atomic.Uint64
	txErrors       atomic.Uint64
	batches        atomic.Uint64
	batchedPkts    atomic.Uint64
	txBatches      atomic.Uint64
	txBatchedPkts  atomic.Uint64
}

// linkTel is the optional registered metric set; every cell is nil
// without a registry, and record calls are nil-receiver no-ops.
type linkTel struct {
	rxPackets      *telemetry.Counter
	rxBytes        *telemetry.Counter
	rxDropRing     *telemetry.Counter
	rxDropTooBig   *telemetry.Counter
	rxDropBadPath  *telemetry.Counter
	rxDropBadKey   *telemetry.Counter
	rxErrTransient *telemetry.Counter
	txPackets      *telemetry.Counter
	txBytes        *telemetry.Counter
	txDropRing     *telemetry.Counter
	txErrors       *telemetry.Counter
	batchSize      *telemetry.Histogram
	txBatchSize    *telemetry.Histogram
}

// UDPLink is a wire driver carrying an interface's traffic as UDP
// datagrams to one peer. It implements netdev.Driver and
// netdev.LinkReporter.
type UDPLink struct {
	ifc   *netdev.Interface
	conn  *net.UDPConn
	peer  atomic.Pointer[netip.AddrPort]
	mtu   int
	batch int

	// slots is the RX descriptor ring; only the RX goroutine touches
	// slotSeq.
	slots   []rxSlot
	slotSeq uint64

	// readFrom is the socket read the RX loop issues — a seam so tests
	// can inject read errors. Set once at construction, never changed
	// while the RX goroutine runs.
	readFrom func(b []byte) (int, netip.AddrPort, error)

	// free and txq together hold exactly TxRing wire buffers: a
	// forwarding worker moves a buffer free→txq (non-blocking on both
	// ends), the drain goroutine moves it back.
	free chan *wireBuf
	txq  chan *wireBuf

	mu      sync.Mutex
	started bool
	stopped bool
	done    chan struct{}
	wg      sync.WaitGroup
	running atomic.Bool

	stats linkStats
	tel   linkTel

	// jr is the event journal (nil = off); ring-full burst onsets and
	// peer changes are journaled. The burst gates rate-limit the
	// drop-arm journaling to one event per quiet period per direction.
	jr       *telemetry.Journal
	rxBurst  burstGate
	txBurst  burstGate
	errBurst burstGate
}

// burstQuietNs separates ring-full bursts: the first drop after a quiet
// second journals the burst onset; further drops inside the window are
// counted in the stats but not journaled.
const burstQuietNs = int64(time.Second)

// burstGate is the onset detector: an atomic timestamp of the last
// journaled drop. Lock-free so the drop arms stay fastpath-clean.
type burstGate struct{ last atomic.Int64 }

// onset reports whether this drop starts a new burst (and claims it).
//
//eisr:fastpath
func (g *burstGate) onset(now int64) bool {
	last := g.last.Load()
	if now-last < burstQuietNs {
		return false
	}
	return g.last.CompareAndSwap(last, now)
}

// NewUDPLink binds the local socket and builds the link for an
// interface. The socket is bound immediately (so a port-0 bind can be
// queried with LocalAddr before Start); I/O goroutines launch on Start.
// The RX slot ring is sized from the interface's current BufDepth —
// attach the interface to its core (which reserves worker-queue mbufs)
// before creating the link.
func NewUDPLink(ifc *netdev.Interface, cfg Config) (*UDPLink, error) {
	if ifc == nil {
		return nil, fmt.Errorf("netio: nil interface")
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Local)
	if err != nil {
		return nil, fmt.Errorf("netio: local address: %w", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netio: bind %s: %w", cfg.Local, err)
	}
	txRing := cfg.TxRing
	if txRing <= 0 {
		txRing = DefaultTxRing
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = DefaultBatch
	}
	slack := cfg.PoolSlack
	if slack <= 0 {
		slack = DefaultPoolSlack
	}
	l := &UDPLink{
		ifc: ifc, conn: conn, mtu: ifc.MTU, batch: batch,
		slots: make([]rxSlot, ifc.BufDepth()+slack),
		free:  make(chan *wireBuf, txRing),
		txq:   make(chan *wireBuf, txRing),
		done:  make(chan struct{}),
	}
	l.readFrom = conn.ReadFromUDPAddrPort
	for i := range l.slots {
		// MTU plus the worst-case path-trace encapsulation, plus one
		// byte so an oversized inner datagram is detectable (a read that
		// fills the buffer was too big) instead of being silently
		// truncated at the buffer boundary.
		l.slots[i].buf = make([]byte, l.mtu+pkt.MaxPathEncap+1)
	}
	for i := 0; i < txRing; i++ {
		// Egress frames carry up to MaxPathEncap bytes of trace context
		// in front of an MTU-sized datagram.
		l.free <- &wireBuf{buf: make([]byte, l.mtu+pkt.MaxPathEncap)}
	}
	if cfg.Tel != nil {
		l.setTelemetry(cfg.Tel)
		l.jr = cfg.Tel.Journal()
	}
	if cfg.Peer != "" {
		if err := l.SetPeer(cfg.Peer); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return l, nil
}

// setTelemetry registers the link's cells under the eisr_netio_*
// families, labeled by interface name.
func (l *UDPLink) setTelemetry(t *telemetry.Telemetry) {
	lbl := telemetry.Label{Key: "iface", Value: l.ifc.Name}
	dir := func(d string) telemetry.Label { return telemetry.Label{Key: "dir", Value: d} }
	reason := func(why string) telemetry.Label { return telemetry.Label{Key: "reason", Value: why} }
	l.tel = linkTel{
		rxPackets: t.Counter("eisr_netio_packets_total", "wire packets per link and direction", lbl, dir("rx")),
		txPackets: t.Counter("eisr_netio_packets_total", "wire packets per link and direction", lbl, dir("tx")),
		rxBytes:   t.Counter("eisr_netio_bytes_total", "wire bytes per link and direction", lbl, dir("rx")),
		txBytes:   t.Counter("eisr_netio_bytes_total", "wire bytes per link and direction", lbl, dir("tx")),

		rxDropRing:    t.Counter("eisr_netio_drops_total", "wire drops by direction and reason", lbl, dir("rx"), reason("ring-full")),
		rxDropTooBig:  t.Counter("eisr_netio_drops_total", "wire drops by direction and reason", lbl, dir("rx"), reason("too-big")),
		rxDropBadPath: t.Counter("eisr_netio_drops_total", "wire drops by direction and reason", lbl, dir("rx"), reason("bad-path")),
		rxDropBadKey:  t.Counter("eisr_netio_drops_total", "wire drops by direction and reason", lbl, dir("rx"), reason("bad-key")),
		txDropRing:    t.Counter("eisr_netio_drops_total", "wire drops by direction and reason", lbl, dir("tx"), reason("ring-full")),

		rxErrTransient: t.Counter("eisr_netio_rx_errors_total", "transient socket read errors per link (counted and skipped, never fatal)", lbl),
		txErrors:       t.Counter("eisr_netio_tx_errors_total", "socket write failures per link", lbl),
		batchSize:      t.Histogram("eisr_netio_rx_batch", "datagrams drained per RX wakeup", lbl),
		txBatchSize:    t.Histogram("eisr_netio_tx_batch", "datagrams written per TX drain wakeup", lbl),
	}
}

// LocalAddr reports the bound socket address (resolves port 0).
func (l *UDPLink) LocalAddr() string { return l.conn.LocalAddr().String() }

// SetPeer points the link at its remote endpoint. Safe while running:
// the write is serialized under l.mu against concurrent SetPeer calls
// (the data path reads the pointer atomically and never writes it).
func (l *UDPLink) SetPeer(addr string) error {
	ap, err := netip.ParseAddrPort(addr)
	if err != nil {
		// Accept hostnames too ("localhost:9001") by resolving once.
		ua, rerr := net.ResolveUDPAddr("udp", addr)
		if rerr != nil {
			return fmt.Errorf("netio: peer address: %w", err)
		}
		ap = ua.AddrPort()
	}
	l.mu.Lock()
	l.peer.Store(&ap)
	l.mu.Unlock()
	l.jr.Record(telemetry.EvLinkPeer, l.ifc.Name+" peer "+ap.String())
	return nil
}

// Start launches the RX and TX goroutines. Idempotent.
func (l *UDPLink) Start() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.started || l.stopped {
		return
	}
	l.started = true
	l.running.Store(true)
	l.wg.Add(2)
	go l.rxLoop()
	go l.txLoop()
}

// Stop closes the socket (unblocking the RX read) and joins the I/O
// goroutines. Idempotent; the link cannot be restarted.
func (l *UDPLink) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	started := l.started
	l.mu.Unlock()
	close(l.done)
	l.conn.Close()
	if started {
		l.wg.Wait()
	}
	l.running.Store(false)
}

// rxLoop drains the socket batch by batch until the link stops.
func (l *UDPLink) rxLoop() {
	defer l.wg.Done()
	for {
		n, closed := l.rxBatch()
		if n > 0 {
			l.stats.batches.Add(1)
			l.stats.batchedPkts.Add(uint64(n))
			l.tel.batchSize.Observe(uint64(n))
		}
		if closed {
			return
		}
	}
}

// rxBatch reads one batch: a blocking read for the batch head, then
// short-deadline reads until the batch cap or the socket runs dry. At
// saturation the cap is hit before the deadline, so the loop cycles
// batches with no timeout errors and no allocations.
//
// Read errors are classified, not fatal: only net.ErrClosed (the link
// stopping) ends the RX loop. Anything else — e.g. an ICMP
// port-unreachable surfacing as ECONNREFUSED on a connected UDP socket
// — is a transient condition of one datagram exchange; it is counted
// (rx_err_transient), its onset journaled, and the loop keeps reading.
func (l *UDPLink) rxBatch() (n int, closed bool) {
	if err := l.conn.SetReadDeadline(time.Time{}); err != nil {
		return 0, true
	}
	for n < l.batch {
		slot := &l.slots[l.slotSeq%uint64(len(l.slots))]
		cnt, _, err := l.readFrom(slot.buf)
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				// Batch drain window expired: the batch is done, the
				// link is healthy.
				return n, false
			}
			if errors.Is(err, net.ErrClosed) {
				return n, true
			}
			l.stats.rxErrTransient.Add(1)
			l.tel.rxErrTransient.Inc()
			if l.jr != nil && l.errBurst.onset(time.Now().UnixNano()) {
				l.jr.Record(telemetry.EvRxErrBurst, l.ifc.Name+" "+err.Error())
			}
			continue
		}
		l.slotSeq++
		l.deliver(slot, cnt)
		n++
		if n == 1 {
			// Batch head arrived; linger briefly for the rest.
			if err := l.conn.SetReadDeadline(time.Now().Add(batchDrainWindow)); err != nil {
				return n, true
			}
		}
	}
	return n, false
}

// deliver parses one received datagram and injects it into the
// interface's RX ring, resetting the slot's embedded packet in place —
// the per-packet receive work, allocation-free in steady state.
//
//eisr:fastpath
func (l *UDPLink) deliver(slot *rxSlot, n int) {
	data := slot.buf[:n]
	p := &slot.p
	*p = pkt.Packet{InIf: l.ifc.Index, OutIf: -1}
	// Strip a path-trace encapsulation, if any, before MTU and key
	// checks: both apply to the inner datagram.
	consumed, ok := pkt.DecodePath(data, &p.Path)
	if !ok {
		l.stats.rxDropBadPath.Add(1)
		l.tel.rxDropBadPath.Inc()
		return
	}
	data = data[consumed:]
	if len(data) > l.mtu {
		l.stats.rxDropTooBig.Add(1)
		l.tel.rxDropTooBig.Inc()
		return
	}
	k, err := pkt.ExtractKey(data, l.ifc.Index)
	if err != nil {
		l.stats.rxDropBadKey.Add(1)
		l.tel.rxDropBadKey.Inc()
		return
	}
	p.Data, p.Key, p.KeyValid = data, k, true
	switch data[0] >> 4 {
	case 4:
		p.TOS = data[1]
	case 6:
		p.TOS = data[0]<<4 | data[1]>>4
	}
	if l.ifc.InjectPacket(p) != nil {
		l.stats.rxDropRing.Add(1)
		l.tel.rxDropRing.Inc()
		if l.jr != nil && l.rxBurst.onset(time.Now().UnixNano()) {
			l.jr.Record(telemetry.EvRxRingBurst, l.ifc.Name)
		}
		return
	}
	l.stats.rxPackets.Add(1)
	l.stats.rxBytes.Add(uint64(n))
	l.tel.rxPackets.Inc()
	l.tel.rxBytes.Add(uint64(n))
}

// TransmitWire queues one egress datagram: grab a wire buffer, copy the
// packet, hand it to the drain goroutine. Non-blocking end to end — an
// exhausted buffer pool is wire backpressure and the packet is dropped
// and counted rather than stalling the forwarding worker.
//
//eisr:fastpath
func (l *UDPLink) TransmitWire(p *pkt.Packet) error {
	var wb *wireBuf
	select {
	case wb = <-l.free:
	default:
		l.stats.txDropRing.Add(1)
		l.tel.txDropRing.Inc()
		if l.jr != nil && l.txBurst.onset(time.Now().UnixNano()) {
			l.jr.Record(telemetry.EvTxRingBurst, l.ifc.Name)
		}
		return netdev.ErrRingFull
	}
	if p.Path.Active && p.Path.NHops > 0 {
		// Re-stamp the hop this router appended so its total residency
		// includes TX queueing up to this point (foreign hops — a
		// context transiting an untraced best-effort router — are never
		// touched). Then prepend the encapsulation.
		if p.Path.StampedHere && !p.Stamp.IsZero() {
			h := p.Path.Last()
			if ns := pkt.ClampNs(time.Since(p.Stamp).Nanoseconds()); ns > h.TotalNs {
				h.TotalNs = ns
			}
		}
		n := pkt.EncodePath(&p.Path, wb.buf)
		wb.n = n + copy(wb.buf[n:], p.Data)
	} else {
		wb.n = copy(wb.buf, p.Data)
	}
	select {
	case l.txq <- wb:
		return nil
	default:
	}
	// Rare full-txq fallback: the buffer MUST return to the pool. The
	// send cannot block — free and txq together hold exactly TxRing
	// buffers and we hold one of them, so free has a slot — and a
	// non-blocking send that drops wb on the default arm would leak a
	// pool buffer per occurrence until the link runs dry.
	//eisr:allow(fastpath) pool-conservation makes this send non-blocking
	l.free <- wb
	l.stats.txDropRing.Add(1)
	l.tel.txDropRing.Inc()
	if l.jr != nil && l.txBurst.onset(time.Now().UnixNano()) {
		l.jr.Record(telemetry.EvTxRingBurst, l.ifc.Name)
	}
	return netdev.ErrRingFull
}

// txLoop writes queued wire buffers to the socket until the link stops.
// Each wakeup drains everything already queued (up to the pool size, so
// the slice is preallocated and never grows) and writes the whole batch
// back to back — forwarding workers batch their enqueues, so one wakeup
// typically flushes a worker's whole TX vector instead of cycling the
// scheduler per datagram.
func (l *UDPLink) txLoop() {
	defer l.wg.Done()
	pend := make([]*wireBuf, 0, cap(l.txq))
	for {
		select {
		case <-l.done:
			return
		case wb := <-l.txq:
			pend = append(pend, wb)
		fill:
			for len(pend) < cap(pend) {
				select {
				case more := <-l.txq:
					pend = append(pend, more)
				default:
					break fill
				}
			}
			for _, w := range pend {
				l.transmitOne(w)
			}
			l.stats.txBatches.Add(1)
			l.stats.txBatchedPkts.Add(uint64(len(pend)))
			l.tel.txBatchSize.Observe(uint64(len(pend)))
			pend = pend[:0]
		}
	}
}

// transmitOne writes one wire buffer to the peer and recycles it — the
// per-packet transmit work, allocation-free in steady state. Takes
// ownership of wb: the buffer is back on the free list on return.
//
//eisr:fastpath
func (l *UDPLink) transmitOne(wb *wireBuf) {
	peer := l.peer.Load()
	if peer == nil {
		l.stats.txErrors.Add(1)
		l.tel.txErrors.Inc()
	} else if _, err := l.conn.WriteToUDPAddrPort(wb.buf[:wb.n], *peer); err != nil {
		l.stats.txErrors.Add(1)
		l.tel.txErrors.Inc()
	} else {
		l.stats.txPackets.Add(1)
		l.stats.txBytes.Add(uint64(wb.n))
		l.tel.txPackets.Inc()
		l.tel.txBytes.Add(uint64(wb.n))
	}
	// Same conservation argument as TransmitWire's fallback: we hold a
	// pool buffer, so the free list has room and the send cannot block.
	//eisr:allow(fastpath) pool-conservation makes this send non-blocking
	l.free <- wb
}

// Stats snapshots the link counters. RxDropMalformed is kept as the sum
// of the attributable arms (bad path header + bad flow key) for
// consumers that predate the split.
func (l *UDPLink) Stats() netdev.LinkStats {
	badPath := l.stats.rxDropBadPath.Load()
	badKey := l.stats.rxDropBadKey.Load()
	s := netdev.LinkStats{
		RxPackets:       l.stats.rxPackets.Load(),
		RxBytes:         l.stats.rxBytes.Load(),
		RxDropRing:      l.stats.rxDropRing.Load(),
		RxDropTooBig:    l.stats.rxDropTooBig.Load(),
		RxDropMalformed: badPath + badKey,
		RxDropBadPath:   badPath,
		RxDropBadKey:    badKey,
		RxErrTransient:  l.stats.rxErrTransient.Load(),
		TxPackets:       l.stats.txPackets.Load(),
		TxBytes:         l.stats.txBytes.Load(),
		TxDropRing:      l.stats.txDropRing.Load(),
		TxErrors:        l.stats.txErrors.Load(),
		Batches:         l.stats.batches.Load(),
		TxBatches:       l.stats.txBatches.Load(),
	}
	if s.Batches > 0 {
		s.AvgBatch = float64(l.stats.batchedPkts.Load()) / float64(s.Batches)
	}
	if s.TxBatches > 0 {
		s.AvgTxBatch = float64(l.stats.txBatchedPkts.Load()) / float64(s.TxBatches)
	}
	return s
}

// LinkInfo describes the link for operator tooling (pmgr links).
func (l *UDPLink) LinkInfo() netdev.LinkInfo {
	info := netdev.LinkInfo{
		Iface:   l.ifc.Index,
		Name:    l.ifc.Name,
		Kind:    "udp",
		Local:   l.LocalAddr(),
		Running: l.running.Load(),
		Stats:   l.Stats(),
	}
	if p := l.peer.Load(); p != nil {
		info.Peer = p.String()
	}
	return info
}
