package netio

// Overhead guard (run by `make bench-smoke`): the steady-state wire
// paths must not allocate per packet. RX: deliver — parse the key,
// reset the slot's embedded packet in place, inject into the ring,
// count. TX: TransmitWire (buffer grab + copy + queue) and txOne
// (socket write + recycle). The alloc assertions run in every
// `go test`; the timing log is gated behind EISR_BENCH_SMOKE=1 like
// the other overhead guards.

import (
	"net"
	"os"
	"testing"

	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pkt"
)

// newRxRig builds a link with one RX slot preloaded with a wire
// datagram, ready for repeated deliver calls.
func newRxRig(tb testing.TB) (*netdev.Interface, *UDPLink, *rxSlot, int) {
	tb.Helper()
	ifc := netdev.NewInterface(0, netdev.Config{})
	l, err := NewUDPLink(ifc, Config{Local: "127.0.0.1:0"})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(l.Stop)
	data := buildUDP(tb, []byte("steady-state"))
	slot := &l.slots[0]
	n := copy(slot.buf, data)
	return ifc, l, slot, n
}

func TestNetioRxDeliverZeroAlloc(t *testing.T) {
	ifc, l, slot, n := newRxRig(t)
	allocs := testing.AllocsPerRun(1000, func() {
		l.deliver(slot, n)
		if ifc.Poll() == nil {
			t.Fatal("deliver did not reach the ring")
		}
	})
	if allocs != 0 {
		t.Fatalf("RX deliver allocated %v per packet", allocs)
	}
}

// newTxRig builds a link aimed at a live sink socket so wire writes
// succeed, without starting the drain goroutine (the test drives txOne
// directly to measure the per-packet work deterministically).
func newTxRig(tb testing.TB) (*UDPLink, *pkt.Packet) {
	tb.Helper()
	ifc := netdev.NewInterface(0, netdev.Config{})
	l, err := NewUDPLink(ifc, Config{Local: "127.0.0.1:0"})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(l.Stop)
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { sink.Close() })
	if err := l.SetPeer(sink.LocalAddr().String()); err != nil {
		tb.Fatal(err)
	}
	p := &pkt.Packet{Data: buildUDP(tb, []byte("steady-state"))}
	return l, p
}

func TestNetioTxZeroAlloc(t *testing.T) {
	l, p := newTxRig(t)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := l.TransmitWire(p); err != nil {
			t.Fatal(err)
		}
		l.transmitOne(<-l.txq)
	})
	if allocs != 0 {
		t.Fatalf("TX path allocated %v per packet", allocs)
	}
	if s := l.Stats(); s.TxErrors != 0 {
		t.Fatalf("wire writes failed during the guard: %+v", s)
	}
}

func BenchmarkNetioRxDeliver(b *testing.B) {
	ifc, l, slot, n := newRxRig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.deliver(slot, n)
		ifc.Poll()
	}
}

func BenchmarkNetioTx(b *testing.B) {
	l, p := newTxRig(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.TransmitWire(p) == nil {
			l.transmitOne(<-l.txq)
		}
	}
}

// The bench-smoke form: assert 0 allocs under the benchmark harness and
// log the per-packet cost of both wire paths.
func TestBenchSmokeNetioOverhead(t *testing.T) {
	if os.Getenv("EISR_BENCH_SMOKE") == "" {
		t.Skip("timing guard; run via make bench-smoke (EISR_BENCH_SMOKE=1)")
	}
	rx := testing.Benchmark(BenchmarkNetioRxDeliver)
	if rx.AllocsPerOp() != 0 {
		t.Fatalf("netio RX deliver: %d allocs/op, want 0", rx.AllocsPerOp())
	}
	t.Logf("netio RX deliver: %.1f ns/op, %d allocs/op",
		float64(rx.T.Nanoseconds())/float64(rx.N), rx.AllocsPerOp())

	tx := testing.Benchmark(BenchmarkNetioTx)
	if tx.AllocsPerOp() != 0 {
		t.Fatalf("netio TX: %d allocs/op, want 0", tx.AllocsPerOp())
	}
	t.Logf("netio TX (copy+queue+write): %.1f ns/op, %d allocs/op",
		float64(tx.T.Nanoseconds())/float64(tx.N), tx.AllocsPerOp())
}
