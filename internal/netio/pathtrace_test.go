package netio

import (
	"net"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/telemetry"
)

// tracedPacket builds a packet carrying an active one-hop context.
func tracedPacket(t testing.TB) *pkt.Packet {
	t.Helper()
	p := &pkt.Packet{Data: buildUDP(t, []byte("traced"))}
	p.Path.Active = true
	p.Path.ID = 0xABCD
	p.Path.AppendHop(pkt.PathHop{
		Router: 7, InIf: 0, OutIf: 1, Verdict: pkt.PathVerdictForwarded,
		QueueNs: 100, TotalNs: 250,
	})
	return p
}

func TestTransmitWireEncapsulatesContext(t *testing.T) {
	_, l := newLink(t, netdev.Config{}, Config{})
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := l.SetPeer(sink.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	l.Start()

	p := tracedPacket(t)
	if err := l.TransmitWire(p); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	sink.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := sink.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if buf[0] != pkt.PathMagic {
		t.Fatalf("frame does not start with the path magic: %#x", buf[0])
	}
	var c pkt.PathContext
	consumed, ok := pkt.DecodePath(buf[:n], &c)
	if !ok || consumed == 0 {
		t.Fatalf("sink cannot decode the encapsulation (consumed=%d ok=%v)", consumed, ok)
	}
	if c.ID != 0xABCD || c.NHops != 1 || c.Hops[0].Router != 7 {
		t.Fatalf("context corrupted in flight: %+v", c)
	}
	if string(buf[consumed:n]) != string(p.Data) {
		t.Error("inner datagram corrupted by the encapsulation")
	}
}

func TestRxDecapsulatesContext(t *testing.T) {
	ifc, l := newLink(t, netdev.Config{}, Config{})
	l.Start()
	src := dialTo(t, l)

	inner := buildUDP(t, []byte("with-context"))
	var c pkt.PathContext
	c.ID = 0x1122334455667788
	c.AppendHop(pkt.PathHop{Router: 1, InIf: -1, OutIf: 1, Verdict: pkt.PathVerdictForwarded, TotalNs: 42})
	frame := make([]byte, pkt.MaxPathEncap+len(inner))
	n := pkt.EncodePath(&c, frame)
	n += copy(frame[n:], inner)
	if _, err := src.Write(frame[:n]); err != nil {
		t.Fatal(err)
	}
	p := pollFor(ifc, 2*time.Second)
	if p == nil {
		t.Fatal("encapsulated packet never reached the RX ring")
	}
	if string(p.Data) != string(inner) {
		t.Error("encapsulation not stripped from the delivered datagram")
	}
	if !p.Path.Active || p.Path.ID != c.ID || p.Path.NHops != 1 || p.Path.Hops[0].TotalNs != 42 {
		t.Errorf("context not recovered: %+v", p.Path)
	}
	if p.Path.StampedHere || p.Path.LocalGates != 0 {
		t.Error("router-local context state not cleared on decode")
	}
	if !p.KeyValid || p.Key.Proto != pkt.ProtoUDP {
		t.Errorf("key not extracted from the inner datagram: %+v", p.Key)
	}
}

func TestRxFutureVersionDeliversUntraced(t *testing.T) {
	ifc, l := newLink(t, netdev.Config{}, Config{})
	l.Start()
	src := dialTo(t, l)

	inner := buildUDP(t, []byte("from-the-future"))
	// A minimal header claiming version 9: the receiver must skip it
	// whole and deliver the inner datagram untraced.
	hdr := make([]byte, 16)
	hdr[0] = pkt.PathMagic
	hdr[1] = 9
	hdr[2], hdr[3] = 0, 16
	frame := append(hdr, inner...)
	if _, err := src.Write(frame); err != nil {
		t.Fatal(err)
	}
	p := pollFor(ifc, 2*time.Second)
	if p == nil {
		t.Fatal("future-version frame never delivered")
	}
	if p.Path.Active {
		t.Error("unknown version must deliver untraced")
	}
	if string(p.Data) != string(inner) {
		t.Error("inner datagram corrupted")
	}
}

func TestRxMalformedEncapCountsDrop(t *testing.T) {
	_, l := newLink(t, netdev.Config{}, Config{})
	l.Start()
	src := dialTo(t, l)

	// Magic byte but a truncated header: malformed, not bare IP.
	if _, err := src.Write([]byte{pkt.PathMagic, 1, 0}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if l.Stats().RxDropMalformed == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("malformed encap not counted: %+v", l.Stats())
}

func TestTransmitWireRestampsOwnHop(t *testing.T) {
	_, l := newLink(t, netdev.Config{}, Config{})
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := l.SetPeer(sink.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}
	l.Start()

	p := tracedPacket(t)
	p.Path.StampedHere = true
	p.Stamp = time.Now().Add(-time.Millisecond) // ≥1ms residency by now
	if err := l.TransmitWire(p); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	sink.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err := sink.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	var c pkt.PathContext
	if _, ok := pkt.DecodePath(buf[:n], &c); !ok {
		t.Fatal("cannot decode the re-stamped frame")
	}
	if c.Hops[0].TotalNs < uint64ToUint32(time.Millisecond.Nanoseconds()) {
		t.Errorf("hop total %dns not re-stamped to include TX queueing", c.Hops[0].TotalNs)
	}

	// A foreign context (StampedHere false) must go out unmodified.
	q := tracedPacket(t)
	q.Stamp = time.Now().Add(-time.Millisecond)
	if err := l.TransmitWire(q); err != nil {
		t.Fatal(err)
	}
	sink.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _, err = sink.ReadFromUDP(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pkt.DecodePath(buf[:n], &c); !ok {
		t.Fatal("cannot decode the transit frame")
	}
	if c.Hops[0].TotalNs != 250 {
		t.Errorf("foreign hop re-stamped: total=%dns, want 250", c.Hops[0].TotalNs)
	}
}

func uint64ToUint32(ns int64) uint32 { return pkt.ClampNs(ns) }

func TestRingBurstJournalsOnce(t *testing.T) {
	tel := telemetry.New()
	tel.EnableJournal(64)
	ifc, l := newLink(t, netdev.Config{RxRing: 1}, Config{Tel: tel})
	l.Start()
	src := dialTo(t, l)

	data := buildUDP(t, []byte("burst"))
	const sent = 16
	for range [sent]struct{}{} {
		if _, err := src.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		s := l.Stats()
		if s.RxPackets+s.RxDropRing == sent && s.RxDropRing > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if l.Stats().RxDropRing == 0 {
		t.Skip("ring of 1 absorbed the whole burst; nothing to journal")
	}
	var bursts int
	for _, ev := range tel.Journal().Snapshot(0, 0) {
		if ev.Kind == telemetry.EvRxRingBurst {
			bursts++
			if ev.Detail != ifc.Name {
				t.Errorf("burst event names %q, want %q", ev.Detail, ifc.Name)
			}
		}
	}
	// Many drops inside one quiet window journal exactly one onset.
	if bursts != 1 {
		t.Errorf("%d rx-ring-burst events, want 1 (burst gating)", bursts)
	}
}
