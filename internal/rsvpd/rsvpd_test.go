package rsvpd_test

// End-to-end RSVP tests over a three-router chain, built through the
// public facade (the daemon needs the facade's Register dispatch, so the
// test lives outside the package to avoid an import cycle).

import (
	"fmt"
	"testing"
	"time"

	"github.com/routerplugins/eisr"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/rsvpd"
)

// rig is a chain: sender(10.1.0.9) — A — B — C — receiver(10.3.0.9).
type rig struct {
	a, b, c    *eisr.Router
	da, db, dc *rsvpd.Daemon
}

func buildChain(t *testing.T) *rig {
	t.Helper()
	mk := func() *eisr.Router {
		r, err := eisr.New(eisr.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.LoadPlugin("drr"); err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b, c := mk(), mk(), mk()

	// Interfaces: 0 stub, 1 toward next router, 2 toward previous.
	addIf := func(r *eisr.Router, idx int32, addr string) {
		if _, err := r.AddInterface(idx, fmt.Sprintf("if%d", idx), addr); err != nil {
			t.Fatal(err)
		}
	}
	addIf(a, 0, "10.1.0.1")
	addIf(a, 1, "192.168.1.1")
	addIf(b, 2, "192.168.1.2")
	addIf(b, 1, "192.168.2.1")
	addIf(c, 2, "192.168.2.2")
	addIf(c, 0, "10.3.0.1")
	eisr.Connect(a.Interface(1), b.Interface(2))
	eisr.Connect(b.Interface(1), c.Interface(2))

	// Static routes (the route daemon is tested elsewhere).
	for _, rt := range []struct {
		r    *eisr.Router
		spec string
	}{
		{a, "10.3.0.0/16 dev 1 via 192.168.1.2"},
		{a, "10.1.0.0/16 dev 0"},
		{b, "10.3.0.0/16 dev 1 via 192.168.2.2"},
		{b, "10.1.0.0/16 dev 2 via 192.168.1.1"},
		{c, "10.3.0.0/16 dev 0"},
		{c, "10.1.0.0/16 dev 2 via 192.168.2.1"},
	} {
		if err := rt.r.AddRoute(rt.spec); err != nil {
			t.Fatal(err)
		}
	}

	// One DRR instance per router on its downstream interface.
	for _, r := range []*eisr.Router{a, b, c} {
		if _, err := r.CreateInstance("drr", map[string]string{"iface": "1"}); err != nil {
			t.Fatal(err)
		}
	}

	da, err := a.EnableRSVP(nil)
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.EnableRSVP(nil)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := c.EnableRSVP(func(addr pkt.Addr) bool {
		return pkt.MustParsePrefix("10.3.0.0/16").Contains(addr)
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{a: a, b: b, c: c, da: da, db: db, dc: dc}
}

func (r *rig) pump() {
	for i := 0; i < 30; i++ {
		if r.a.Core.Step()+r.b.Core.Step()+r.c.Core.Step() == 0 {
			return
		}
	}
}

func session() rsvpd.Session {
	return rsvpd.Session{Dst: "10.3.0.9", Port: 5004, Proto: pkt.ProtoUDP}
}

func sender() rsvpd.Sender {
	return rsvpd.Sender{Src: "10.1.0.9", Port: 9000}
}

func TestRSVPPathEstablishment(t *testing.T) {
	r := buildChain(t)
	// The receiver answers PATH with a reservation automatically.
	reserved := make(chan struct{}, 1)
	r.dc.OnPath = func(m *rsvpd.Message) {
		if err := r.dc.Reserve(m.Session, rsvpd.Flowspec{
			Plugin: "drr", Instance: "drr0", Weight: 4,
		}, 30); err != nil {
			t.Error(err)
		}
		reserved <- struct{}{}
	}
	if err := r.da.OriginatePath(session(), sender(), 30); err != nil {
		t.Fatal(err)
	}
	r.pump()
	select {
	case <-reserved:
	default:
		t.Fatal("receiver never saw PATH")
	}
	r.pump() // carry the RESV back upstream

	// Path state exists at every hop; reservations installed at every
	// hop.
	for i, d := range []*rsvpd.Daemon{r.da, r.db, r.dc} {
		paths, resvs := d.State()
		if paths != 1 || resvs != 1 {
			t.Errorf("hop %d state: paths=%d resvs=%d", i, paths, resvs)
		}
	}
	// The filter binding is real: each router's sched gate has the
	// session's fixed filter bound to its DRR instance with weight 4.
	for i, rt := range []*eisr.Router{r.a, r.b, r.c} {
		ft, _ := rt.AIU.Table(pcu.TypeSched)
		recs := ft.Records()
		if len(recs) != 1 {
			t.Fatalf("hop %d: %d sched filters", i, len(recs))
		}
		want := "<10.1.0.9, 10.3.0.9, UDP, 9000, 5004, *>"
		if recs[0].Filter.String() != want {
			t.Errorf("hop %d filter = %s want %s", i, recs[0].Filter, want)
		}
	}

	// And the data path honors it: the reserved flow dispatches to DRR
	// at hop A.
	data, _ := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("10.1.0.9"), Dst: pkt.MustParseAddr("10.3.0.9"),
		SrcPort: 9000, DstPort: 5004, Payload: []byte("media"),
	})
	if err := r.a.Interface(0).Inject(data); err != nil {
		t.Fatal(err)
	}
	r.pump()
	if got := r.a.Core.Stats().SchedEnq; got != 1 {
		t.Errorf("A scheduled %d packets through the reservation", got)
	}
}

func TestRSVPNoPathNoResv(t *testing.T) {
	r := buildChain(t)
	// A RESV without prior PATH state is dropped (RSVP semantics).
	if err := r.dc.Reserve(session(), rsvpd.Flowspec{Plugin: "drr", Instance: "drr0"}, 30); err == nil {
		t.Error("Reserve without path state accepted")
	}
	_, resvs := r.dc.State()
	if resvs != 0 {
		t.Error("reservation state created without path")
	}
}

func TestRSVPSoftStateExpiry(t *testing.T) {
	r := buildChain(t)
	now := time.Unix(50000, 0)
	for _, d := range []*rsvpd.Daemon{r.da, r.db, r.dc} {
		d.SetClock(func() time.Time { return now })
	}
	r.dc.OnPath = func(m *rsvpd.Message) {
		r.dc.Reserve(m.Session, rsvpd.Flowspec{Plugin: "drr", Instance: "drr0", Weight: 2}, 10)
	}
	if err := r.da.OriginatePath(session(), sender(), 10); err != nil {
		t.Fatal(err)
	}
	r.pump()
	r.pump()
	if _, resvs := r.db.State(); resvs != 1 {
		t.Fatal("not converged")
	}
	// Time passes without refresh: state and filter bindings lapse.
	now = now.Add(31 * time.Second)
	for _, d := range []*rsvpd.Daemon{r.da, r.db, r.dc} {
		if n := d.Expire(); n == 0 {
			t.Error("nothing expired")
		}
	}
	for i, rt := range []*eisr.Router{r.a, r.b, r.c} {
		ft, _ := rt.AIU.Table(pcu.TypeSched)
		if got := len(ft.Records()); got != 0 {
			t.Errorf("hop %d: %d filters survive expiry", i, got)
		}
	}
}

func TestRSVPRefreshKeepsState(t *testing.T) {
	r := buildChain(t)
	now := time.Unix(90000, 0)
	for _, d := range []*rsvpd.Daemon{r.da, r.db, r.dc} {
		d.SetClock(func() time.Time { return now })
	}
	r.dc.OnPath = func(m *rsvpd.Message) {
		r.dc.Reserve(m.Session, rsvpd.Flowspec{Plugin: "drr", Instance: "drr0", Weight: 2}, 20)
	}
	refresh := func() {
		if err := r.da.OriginatePath(session(), sender(), 20); err != nil {
			t.Fatal(err)
		}
		r.pump()
		r.pump()
	}
	refresh()
	// Periodic refresh keeps everything alive across several lifetimes.
	for i := 0; i < 4; i++ {
		now = now.Add(15 * time.Second)
		refresh()
		for _, d := range []*rsvpd.Daemon{r.da, r.db, r.dc} {
			d.Expire()
		}
	}
	for i, d := range []*rsvpd.Daemon{r.da, r.db, r.dc} {
		paths, resvs := d.State()
		if paths != 1 || resvs != 1 {
			t.Errorf("hop %d lost state under refresh: paths=%d resvs=%d", i, paths, resvs)
		}
	}
}
