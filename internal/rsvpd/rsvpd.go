// Package rsvpd implements the reservation protocol the paper was in the
// middle of bringing up ("we implemented an SSP daemon for our system,
// and are currently in the process of porting an RSVP implementation"):
// a compact RSVP in the RFC 2205 mold.
//
// Semantics reproduced from RSVP:
//
//   - PATH messages travel from the sender toward the session destination
//     through the data path, carrying a hop-by-hop RSVP_HOP object. Every
//     router on the way punts them to its daemon (the router-alert
//     mechanism, realized by the punt instance at the options gate),
//     records path state <session → previous hop>, rewrites the hop to
//     its own outgoing address, and re-originates the message downstream.
//   - RESV messages travel receiver-to-sender along the reverse path
//     recorded by the path state. At every hop the daemon installs the
//     reservation — a filter binding on the scheduling gate with the
//     requested weight/class — exactly the paper's control flow
//     ("the Plugin Manager or one of the user space daemons (RSVP or SSP)
//     can create filters through calls to the AIU").
//   - Both kinds of state are soft: they expire unless refreshed.
//
// Simplifications (documented per DESIGN.md): fixed-filter style —
// one sender per session; flowspecs carry a DRR weight or an H-FSC class
// name rather than token-bucket parameters; encoding is JSON.
package rsvpd

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// Port is the UDP port the daemon's messages ride on (the real protocol
// is IP protocol 46; UDP encapsulation on port 3455 — RSVP's registered
// UDP fallback — keeps the simulation inside the existing demux).
const Port = 3455

// Message is one RSVP message.
type Message struct {
	// Kind is "path" or "resv".
	Kind string `json:"kind"`
	// Session identifies the flow being reserved for: the receiver's
	// address/port/protocol.
	Session Session `json:"session"`
	// Sender identifies the traffic source (fixed-filter style).
	Sender Sender `json:"sender"`
	// Hop is the RSVP_HOP: the address of the previous RSVP-capable
	// node (rewritten at every hop for PATH; the next upstream hop for
	// RESV).
	Hop string `json:"hop"`
	// Flowspec is the reservation request (RESV only).
	Flowspec Flowspec `json:"flowspec,omitempty"`
	// LifetimeSec bounds the soft state (default 30 s).
	LifetimeSec int `json:"lifetime_sec,omitempty"`
}

// Session names the destination flow endpoint.
type Session struct {
	Dst   string `json:"dst"`
	Port  uint16 `json:"port"`
	Proto uint8  `json:"proto"`
}

// Sender names the traffic source.
type Sender struct {
	Src  string `json:"src"`
	Port uint16 `json:"port"`
}

// Flowspec is the requested service.
type Flowspec struct {
	// Plugin and Instance name the scheduling instance to bind at each
	// hop ("drr"/"drr0"). Weight applies to DRR, Class to H-FSC.
	Plugin   string  `json:"plugin"`
	Instance string  `json:"instance"`
	Weight   float64 `json:"weight,omitempty"`
	Class    string  `json:"class,omitempty"`
}

// Registrar is the slice of the router's control surface the daemon
// needs: PCU message dispatch (the eisr facade satisfies it).
type Registrar interface {
	Register(plugin, instance string, args map[string]string) error
	Deregister(plugin, instance, filter string) error
}

// Daemon is the per-router RSVP daemon.
type Daemon struct {
	core  *ipcore.Router
	reg   Registrar
	clock func() time.Time

	mu    sync.Mutex
	paths map[Session]*pathState
	resvs map[Session]*resvState

	// Local sessions: destinations this router terminates (receivers
	// behind it); arriving PATH state for them triggers ResvHandler.
	localDst func(a pkt.Addr) bool
	// OnPath is invoked when PATH state for a local session arrives —
	// the receiver application's hook to answer with Reserve.
	OnPath func(m *Message)

	// Counters.
	PathsSeen int
	ResvsSeen int
}

type pathState struct {
	prevHop  pkt.Addr
	inIf     int32
	sender   Sender
	deadline time.Time
}

type resvState struct {
	filter   string
	flow     Flowspec
	deadline time.Time
}

// New builds a daemon. localDst reports whether an address is terminated
// by this router (a receiver on its stub networks); nil means none.
func New(core *ipcore.Router, reg Registrar, localDst func(a pkt.Addr) bool) *Daemon {
	if localDst == nil {
		localDst = func(pkt.Addr) bool { return false }
	}
	return &Daemon{
		core: core, reg: reg, clock: time.Now,
		paths: make(map[Session]*pathState), resvs: make(map[Session]*resvState),
		localDst: localDst,
	}
}

// SetClock overrides the time source (tests).
func (d *Daemon) SetClock(f func() time.Time) { d.clock = f }

// HandlePacket ingests a punted or locally delivered protocol packet.
func (d *Daemon) HandlePacket(p *pkt.Packet) {
	payload, err := udpPayload(p.Data)
	if err != nil {
		return
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return
	}
	switch m.Kind {
	case "path":
		d.handlePath(p, &m)
	case "resv":
		d.handleResv(&m)
	}
}

func (d *Daemon) lifetime(m *Message) time.Duration {
	if m.LifetimeSec > 0 {
		return time.Duration(m.LifetimeSec) * time.Second
	}
	return 30 * time.Second
}

// handlePath records path state and forwards the message downstream with
// a rewritten hop, or hands it to the receiver hook when the session
// terminates here.
func (d *Daemon) handlePath(p *pkt.Packet, m *Message) {
	prev, err := pkt.ParseAddr(m.Hop)
	if err != nil {
		return
	}
	dst, err := pkt.ParseAddr(m.Session.Dst)
	if err != nil {
		return
	}
	d.mu.Lock()
	d.PathsSeen++
	d.paths[m.Session] = &pathState{
		prevHop: prev, inIf: p.InIf, sender: m.Sender,
		deadline: d.clock().Add(d.lifetime(m)),
	}
	d.mu.Unlock()

	if d.localDst(dst) {
		if d.OnPath != nil {
			d.OnPath(m)
		}
		return
	}
	// Forward downstream: route toward the session destination, rewrite
	// the hop to our outgoing interface address.
	nh, ok := d.core.Routes().Lookup(dst, nil)
	if !ok {
		return
	}
	out := d.core.Interface(nh.IfIndex)
	if out == nil {
		return
	}
	fwd := *m
	var zero pkt.Addr
	if out.Addr != zero {
		fwd.Hop = out.Addr.String()
	}
	d.send(out, dst, &fwd)
}

// handleResv installs the reservation at this hop and forwards the
// message to the stored previous hop, until the path state says the
// sender side is reached.
func (d *Daemon) handleResv(m *Message) {
	d.mu.Lock()
	ps, ok := d.paths[m.Session]
	d.mu.Unlock()
	if !ok {
		return // no path state: RSVP drops the reservation
	}
	filter := reservationFilter(m)
	args := map[string]string{"filter": filter}
	if m.Flowspec.Weight > 0 {
		args["weight"] = fmt.Sprint(m.Flowspec.Weight)
	}
	if m.Flowspec.Class != "" {
		args["class"] = m.Flowspec.Class
	}
	d.mu.Lock()
	_, exists := d.resvs[m.Session]
	d.mu.Unlock()
	if !exists {
		if err := d.reg.Register(m.Flowspec.Plugin, m.Flowspec.Instance, args); err != nil {
			return
		}
	}
	d.mu.Lock()
	d.ResvsSeen++
	d.resvs[m.Session] = &resvState{filter: filter, flow: m.Flowspec, deadline: d.clock().Add(d.lifetime(m))}
	d.mu.Unlock()

	// Forward upstream toward the previous hop recorded in path state,
	// unless this router is the first hop (prev hop == the sender).
	if ps.prevHop.String() == m.Sender.Src {
		return
	}
	out := d.core.Interface(ps.inIf)
	if out == nil {
		return
	}
	d.send(out, ps.prevHop, m)
}

// reservationFilter derives the six-tuple for the session's flow —
// fixed-filter style: fully specified by sender and session.
func reservationFilter(m *Message) string {
	return fmt.Sprintf("%s, %s, %d, %d, %d, *",
		m.Sender.Src, m.Session.Dst, m.Session.Proto, m.Sender.Port, m.Session.Port)
}

// send emits a protocol message out an interface toward dst.
func (d *Daemon) send(out interface {
	Transmit(p *pkt.Packet) error
}, dst pkt.Addr, m *Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	srcAddr, _ := pkt.ParseAddr(m.Hop)
	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: srcAddr, Dst: dst, SrcPort: Port, DstPort: Port,
		Payload: payload,
	})
	if err != nil {
		return err
	}
	p, err := pkt.NewPacket(data, -1)
	if err != nil {
		return err
	}
	return out.Transmit(p)
}

// OriginatePath injects PATH state establishment from the sender side:
// called on the sender's first-hop router.
func (d *Daemon) OriginatePath(session Session, sender Sender, lifetimeSec int) error {
	dst, err := pkt.ParseAddr(session.Dst)
	if err != nil {
		return err
	}
	nh, ok := d.core.Routes().Lookup(dst, nil)
	if !ok {
		return fmt.Errorf("rsvpd: no route toward session %s", session.Dst)
	}
	out := d.core.Interface(nh.IfIndex)
	if out == nil {
		return fmt.Errorf("rsvpd: no interface %d", nh.IfIndex)
	}
	var zero pkt.Addr
	hop := sender.Src
	if out.Addr != zero {
		hop = out.Addr.String()
	}
	m := &Message{
		Kind: "path", Session: session, Sender: sender, Hop: hop,
		LifetimeSec: lifetimeSec,
	}
	// Record local path state so a returning RESV can stop here.
	d.mu.Lock()
	d.paths[session] = &pathState{
		prevHop: mustAddr(sender.Src), inIf: -1, sender: sender,
		deadline: d.clock().Add(d.lifetime(m)),
	}
	d.mu.Unlock()
	return d.send(out, dst, m)
}

// Reserve originates a RESV from the receiver side: called on the
// receiver's router (typically from OnPath).
func (d *Daemon) Reserve(session Session, flow Flowspec, lifetimeSec int) error {
	m := &Message{Kind: "resv", Session: session, Flowspec: flow, LifetimeSec: lifetimeSec}
	d.mu.Lock()
	ps, ok := d.paths[session]
	if ok {
		m.Sender = ps.sender
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("rsvpd: no path state for session %v", session)
	}
	d.handleResv(m)
	return nil
}

// Expire tears down lapsed path and reservation state; expired
// reservations are deregistered from the scheduler. It returns the
// number of state blocks removed.
func (d *Daemon) Expire() int {
	now := d.clock()
	n := 0
	var drop []resvState
	d.mu.Lock()
	for s, ps := range d.paths {
		if ps.deadline.Before(now) {
			delete(d.paths, s)
			n++
		}
	}
	for s, rs := range d.resvs {
		if rs.deadline.Before(now) {
			drop = append(drop, *rs)
			delete(d.resvs, s)
			n++
		}
	}
	d.mu.Unlock()
	for _, rs := range drop {
		d.reg.Deregister(rs.flow.Plugin, rs.flow.Instance, rs.filter)
	}
	return n
}

// State reports (paths, reservations) counts.
func (d *Daemon) State() (int, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.paths), len(d.resvs)
}

func mustAddr(s string) pkt.Addr {
	a, _ := pkt.ParseAddr(s)
	return a
}

// udpPayload extracts the UDP payload of an IPv4 datagram.
func udpPayload(data []byte) ([]byte, error) {
	h, err := pkt.ParseIPv4(data)
	if err != nil {
		return nil, err
	}
	if h.Protocol != pkt.ProtoUDP {
		return nil, fmt.Errorf("rsvpd: not UDP")
	}
	seg := data[h.HeaderLen():h.TotalLen]
	if len(seg) < pkt.UDPHeaderLen {
		return nil, pkt.ErrTruncated
	}
	return seg[pkt.UDPHeaderLen:], nil
}

// PuntInstance is the options-gate instance that diverts RSVP messages
// to the local daemon at every router on the path — the router-alert
// behavior. Bind it to the filter "<*, *, UDP, *, 3455, *>" at the
// options gate.
type PuntInstance struct {
	Name string
}

// InstanceName implements pcu.Instance.
func (i *PuntInstance) InstanceName() string {
	if i.Name == "" {
		return "rsvp-punt"
	}
	return i.Name
}

// HandlePacket implements pcu.Instance.
func (i *PuntInstance) HandlePacket(p *pkt.Packet) error {
	p.PuntLocal = true
	return nil
}

// Ensure interface satisfaction.
var _ pcu.Instance = (*PuntInstance)(nil)

// BindPunt installs the punt instance at a router's options gate so PATH
// and RESV messages reach the daemon hop by hop.
func BindPunt(a *aiu.AIU) error {
	f, err := aiu.ParseFilter(fmt.Sprintf("*, *, UDP, *, %d, *", Port))
	if err != nil {
		return err
	}
	_, err = a.Bind(pcu.TypeOptions, f, &PuntInstance{}, nil)
	return err
}
