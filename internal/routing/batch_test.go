package routing

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/pkt"
)

func ip4(a, b, c, d byte) pkt.Addr {
	return pkt.AddrV4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// TestApplyBatchKindsAgree churns randomized batches through one table
// per BMP kind and checks that every kind answers every probe
// identically — the incremental engines (patricia, bspl) against the
// rebuild-only ones (linear, cpe).
func TestApplyBatchKindsAgree(t *testing.T) {
	kinds := []bmp.Kind{bmp.KindLinear, bmp.KindPatricia, bmp.KindBSPL, bmp.KindCPE}
	tabs := make([]*Table, len(kinds))
	for i, k := range kinds {
		var err error
		tabs[i], err = New(k)
		if err != nil {
			t.Fatalf("New(%s): %v", k, err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	lens := []int{0, 8, 12, 16, 20, 24, 32}
	var installed []pkt.Prefix
	for step := 0; step < 120; step++ {
		var adds []Route
		var dels []pkt.Prefix
		touched := map[pkt.Prefix]bool{}
		for i, n := 0, 1+rng.Intn(5); i < n; i++ {
			if len(installed) > 0 && rng.Intn(100) < 35 {
				j := rng.Intn(len(installed))
				p := installed[j]
				if touched[p] {
					continue
				}
				touched[p] = true
				installed = append(installed[:j], installed[j+1:]...)
				dels = append(dels, p)
			} else {
				a := uint32(10)<<24 | uint32(rng.Intn(1<<16))<<8
				p := pkt.PrefixFrom(pkt.AddrV4(a), lens[rng.Intn(len(lens))])
				if touched[p] {
					continue
				}
				touched[p] = true
				installed = append(installed, p)
				adds = append(adds, Route{Prefix: p, NextHop: NextHop{IfIndex: int32(step), Metric: rng.Intn(3)}})
			}
		}
		for _, tb := range tabs {
			tb.ApplyBatch(adds, dels)
		}
		for i := 0; i < 20; i++ {
			dst := pkt.AddrV4(uint32(10)<<24 | uint32(rng.Intn(1<<24)))
			ref, refOK := tabs[0].Lookup(dst, nil)
			for j := 1; j < len(tabs); j++ {
				nh, ok := tabs[j].Lookup(dst, nil)
				if ok != refOK || nh != ref {
					t.Fatalf("step %d: kind %s disagrees with linear on %v: (%v,%v) vs (%v,%v)",
						step, kinds[j], dst, nh, ok, ref, refOK)
				}
			}
		}
	}
}

// TestApplyBatchSinglePublish checks batch semantics: metric-worse adds
// are ignored, absent dels are no-ops, and the returned counts reflect
// what actually changed.
func TestApplyBatchSinglePublish(t *testing.T) {
	tb, err := New(bmp.KindPatricia)
	if err != nil {
		t.Fatal(err)
	}
	p1 := pkt.PrefixFrom(ip4(10, 1, 0, 0), 16)
	p2 := pkt.PrefixFrom(ip4(10, 2, 0, 0), 16)
	na, nd := tb.ApplyBatch([]Route{
		{Prefix: p1, NextHop: NextHop{IfIndex: 1, Metric: 1}},
		{Prefix: p2, NextHop: NextHop{IfIndex: 2}},
	}, nil)
	if na != 2 || nd != 0 {
		t.Fatalf("initial batch: (%d,%d)", na, nd)
	}
	// Worse metric ignored, absent delete ignored, real delete counted.
	na, nd = tb.ApplyBatch(
		[]Route{{Prefix: p1, NextHop: NextHop{IfIndex: 9, Metric: 5}}},
		[]pkt.Prefix{p2, pkt.PrefixFrom(ip4(10, 3, 0, 0), 16)},
	)
	if na != 0 || nd != 1 {
		t.Fatalf("second batch: (%d,%d)", na, nd)
	}
	if nh, ok := tb.Lookup(ip4(10, 1, 5, 5), nil); !ok || nh.IfIndex != 1 {
		t.Fatalf("metric-worse add replaced the route: %+v %v", nh, ok)
	}
	if _, ok := tb.Lookup(ip4(10, 2, 5, 5), nil); ok {
		t.Fatalf("withdrawn route still matches")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len=%d want 1", tb.Len())
	}
}

// TestConcurrentLookupDuringBatches hammers lock-free Lookup from
// several goroutines while a writer replays batched churn — the
// snapshot-publication contract under -race. Readers assert only
// invariants that hold across generations: a hit must return one of the
// values ever installed for a covering prefix.
func TestConcurrentLookupDuringBatches(t *testing.T) {
	for _, kind := range []bmp.Kind{bmp.KindPatricia, bmp.KindBSPL} {
		t.Run(string(kind), func(t *testing.T) {
			tb, err := New(kind)
			if err != nil {
				t.Fatal(err)
			}
			// Stable covering route so every probe under 10/8 always hits.
			tb.Add(pkt.PrefixFrom(ip4(10, 0, 0, 0), 8), NextHop{IfIndex: 1000})
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for {
						select {
						case <-stop:
							return
						default:
						}
						dst := pkt.AddrV4(uint32(10)<<24 | uint32(rng.Intn(1<<24)))
						nh, ok := tb.Lookup(dst, nil)
						if !ok {
							t.Errorf("lookup %v missed despite covering /8", dst)
							return
						}
						if nh.IfIndex < 0 || (nh.IfIndex > 255 && nh.IfIndex != 1000) {
							t.Errorf("lookup %v returned torn next hop %+v", dst, nh)
							return
						}
					}
				}(int64(w))
			}
			rng := rand.New(rand.NewSource(7))
			var installed []pkt.Prefix
			for step := 0; step < 300; step++ {
				var adds []Route
				var dels []pkt.Prefix
				touched := map[pkt.Prefix]bool{}
				for i, n := 0, 1+rng.Intn(8); i < n; i++ {
					if len(installed) > 0 && rng.Intn(2) == 0 {
						j := rng.Intn(len(installed))
						p := installed[j]
						if touched[p] {
							continue
						}
						touched[p] = true
						installed = append(installed[:j], installed[j+1:]...)
						dels = append(dels, p)
					} else {
						l := []int{12, 16, 20, 24, 32}[rng.Intn(5)]
						p := pkt.PrefixFrom(pkt.AddrV4(uint32(10)<<24|uint32(rng.Intn(1<<24))), l)
						if touched[p] || p.Len == 8 {
							continue
						}
						touched[p] = true
						installed = append(installed, p)
						adds = append(adds, Route{Prefix: p, NextHop: NextHop{IfIndex: int32(rng.Intn(256))}})
					}
				}
				tb.ApplyBatch(adds, dels)
			}
			close(stop)
			wg.Wait()
		})
	}
}

var sinkNH NextHop

// BenchmarkApplyBatchIncremental measures per-batch update cost on a
// populated table — the number the fib bench's incremental-vs-rebuild
// comparison tracks.
func BenchmarkApplyBatchIncremental(b *testing.B) {
	for _, kind := range []bmp.Kind{bmp.KindPatricia, bmp.KindBSPL} {
		b.Run(string(kind), func(b *testing.B) {
			tb, err := New(kind)
			if err != nil {
				b.Fatal(err)
			}
			var adds []Route
			for i := 0; i < 100_000; i++ {
				p := pkt.PrefixFrom(pkt.AddrV4(uint32(10)<<24|uint32(i)<<8), 24)
				adds = append(adds, Route{Prefix: p, NextHop: NextHop{IfIndex: int32(i & 7)}})
			}
			tb.ApplyBatch(adds, nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pkt.PrefixFrom(pkt.AddrV4(uint32(10)<<24|uint32(i%100_000)<<8), 24)
				tb.ApplyBatch([]Route{{Prefix: p, NextHop: NextHop{IfIndex: int32(i)}}}, nil)
			}
			b.StopTimer()
			nh, _ := tb.Lookup(ip4(10, 0, 1, 1), nil)
			sinkNH = nh
			_ = fmt.Sprint(sinkNH)
		})
	}
}
