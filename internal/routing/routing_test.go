package routing

import (
	"testing"

	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/pkt"
)

func TestTableLookupLongestMatch(t *testing.T) {
	for _, kind := range []bmp.Kind{bmp.KindLinear, bmp.KindPatricia, bmp.KindBSPL, bmp.KindCPE} {
		tab, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		tab.Add(pkt.MustParsePrefix("0.0.0.0/0"), NextHop{IfIndex: 0})
		tab.Add(pkt.MustParsePrefix("10.0.0.0/8"), NextHop{IfIndex: 1})
		tab.Add(pkt.MustParsePrefix("10.9.0.0/16"), NextHop{IfIndex: 2})
		nh, ok := tab.Lookup(pkt.MustParseAddr("10.9.1.1"), nil)
		if !ok || nh.IfIndex != 2 {
			t.Errorf("%s: lookup = %+v,%v", kind, nh, ok)
		}
		nh, _ = tab.Lookup(pkt.MustParseAddr("10.1.1.1"), nil)
		if nh.IfIndex != 1 {
			t.Errorf("%s: /8 match = %+v", kind, nh)
		}
		nh, _ = tab.Lookup(pkt.MustParseAddr("192.0.2.1"), nil)
		if nh.IfIndex != 0 {
			t.Errorf("%s: default = %+v", kind, nh)
		}
		if tab.Len() != 3 {
			t.Errorf("Len = %d", tab.Len())
		}
	}
}

func TestTableMetric(t *testing.T) {
	tab, _ := New("")
	p := pkt.MustParsePrefix("10.0.0.0/8")
	tab.Add(p, NextHop{IfIndex: 1, Metric: 10})
	tab.Add(p, NextHop{IfIndex: 2, Metric: 20}) // worse; ignored
	nh, _ := tab.Lookup(pkt.MustParseAddr("10.1.1.1"), nil)
	if nh.IfIndex != 1 {
		t.Errorf("worse metric replaced route: %+v", nh)
	}
	tab.Add(p, NextHop{IfIndex: 3, Metric: 5}) // better; replaces
	nh, _ = tab.Lookup(pkt.MustParseAddr("10.1.1.1"), nil)
	if nh.IfIndex != 3 {
		t.Errorf("better metric did not replace: %+v", nh)
	}
}

func TestTableDel(t *testing.T) {
	tab, _ := New("")
	p := pkt.MustParsePrefix("10.0.0.0/8")
	tab.Add(p, NextHop{IfIndex: 1})
	if !tab.Del(p) {
		t.Fatal("Del returned false")
	}
	if tab.Del(p) {
		t.Error("double Del returned true")
	}
	if _, ok := tab.Lookup(pkt.MustParseAddr("10.1.1.1"), nil); ok {
		t.Error("deleted route still matches")
	}
}

func TestRoutesListing(t *testing.T) {
	tab, _ := New("")
	tab.Add(pkt.MustParsePrefix("10.0.0.0/8"), NextHop{IfIndex: 1})
	tab.Add(pkt.MustParsePrefix("2001:db8::/32"), NextHop{IfIndex: 2})
	rs := tab.Routes()
	if len(rs) != 2 {
		t.Fatalf("Routes = %v", rs)
	}
}

func TestParseRoute(t *testing.T) {
	r, err := ParseRoute("10.0.0.0/8 dev 2 via 192.168.1.1 metric 5")
	if err != nil {
		t.Fatal(err)
	}
	if r.Prefix.String() != "10.0.0.0/8" || r.NextHop.IfIndex != 2 ||
		r.NextHop.Gateway.String() != "192.168.1.1" || r.NextHop.Metric != 5 {
		t.Errorf("parsed %+v", r)
	}
	if _, err := ParseRoute("10.0.0.0/8"); err == nil {
		t.Error("missing dev should fail")
	}
	if _, err := ParseRoute("10.0.0.0/8 dev x"); err == nil {
		t.Error("bad dev should fail")
	}
	if _, err := ParseRoute("10.0.0.0/8 dev 1 bogus 3"); err == nil {
		t.Error("unknown keyword should fail")
	}
	if _, err := ParseRoute("not-a-prefix dev 1 via 1.2.3.4"); err == nil {
		t.Error("bad prefix should fail")
	}
}
