// Package routing implements the router's forwarding table on top of the
// pluggable best-matching-prefix algorithms, plus the paper's §8
// extension: routing integrated with the packet classifier (QoS routing /
// L4 switching), where per-flow filters select routes ahead of the
// destination-only longest-prefix match.
//
// As the paper observes, plain routing *is* packet classification with
// only the destination field specified and everything else wildcarded;
// this package keeps the conventional destination table for the fast
// common case and delegates flow-sensitive routing to the classifier.
package routing

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/cycles"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/telemetry"
)

// NextHop is a forwarding decision.
type NextHop struct {
	IfIndex int32
	// Gateway is the next-hop address; the zero Addr means directly
	// connected (deliver to the destination itself).
	Gateway pkt.Addr
	// Metric orders competing routes to the same prefix.
	Metric int
}

// Route pairs a prefix with its next hop, for listings.
type Route struct {
	Prefix  pkt.Prefix
	NextHop NextHop
}

// Table is a concurrency-safe forwarding table. The longest-prefix-match
// engine is one of the BMP plugins, selected at construction — exactly
// the paper's arrangement, where BMP implementations are plugins used
// "for packet classification and routing".
//
// Lookups are lock-free: mutators derive a new BMP structure under the
// control-path mutex and publish it atomically. Every worker of the
// parallel forwarding engine performs a route lookup per routed packet,
// so even a read lock here would put one shared cache line on every
// core's hit path; copy-on-write moves the entire cost to route churn,
// which is control-path by definition.
//
// Engines that implement bmp.Incremental (PATRICIA, BSPL) derive each
// generation from the published one via ApplyDelta, copying only the
// structure the batch touches; the others (linear, CPE) rebuild from
// the route list. Either way exactly one snapshot is published per
// mutation batch.
type Table struct {
	mu   sync.Mutex // serializes mutators
	kind bmp.Kind
	list map[pkt.Prefix]NextHop
	snap atomic.Pointer[tableSnap]
	met  *telemetry.FIBMetrics
}

// tableSnap is one immutable published generation of the BMP structure.
type tableSnap struct {
	bmp bmp.Table
}

// New builds a table on the given BMP algorithm ("" = BSPL).
func New(kind bmp.Kind) (*Table, error) {
	if kind == "" {
		kind = bmp.KindBSPL
	}
	// Validate the kind and publish an empty structure.
	b, err := bmp.New(kind)
	if err != nil {
		return nil, err
	}
	t := &Table{kind: kind, list: make(map[pkt.Prefix]NextHop)}
	t.snap.Store(&tableSnap{bmp: b})
	return t, nil
}

// SetTelemetry attaches the eisr_fib_* metric family. Control path;
// call before route churn starts (typically right after construction).
func (t *Table) SetTelemetry(tel *telemetry.Telemetry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.met = tel.FIBMetrics(string(t.kind))
	t.met.SetRoutes(len(t.list))
}

// rebuildLocked constructs a fresh BMP structure from the route list,
// primes every lazily built internal (the data path must never mutate
// the published structure), and publishes it. Called with t.mu held.
func (t *Table) rebuildLocked() {
	b, err := bmp.New(t.kind)
	if err != nil {
		return // kind was validated at construction; unreachable
	}
	for p, nh := range t.list {
		b.Insert(p, nh)
	}
	for p := range t.list {
		b.Lookup(p.Addr, nil)
	}
	t.snap.Store(&tableSnap{bmp: b})
}

// bulkRebuildOps is the batch size at which publishLocked starts
// considering a full rebuild instead of per-prefix incremental
// maintenance: below it incremental always wins, above it the batch
// must also be a large fraction of the resulting table. A full-table
// dump load (ops ≈ table) rebuilds once; a 10k-route churn batch on a
// million-route table stays incremental.
const bulkRebuildOps = 4096

// publishLocked publishes one snapshot reflecting delta d: derived
// incrementally from the live snapshot when the engine supports it,
// rebuilt from the route list otherwise. Called with t.mu held (the
// mutex is what makes load-modify-store on t.snap safe). Reports
// whether the incremental path was taken.
func (t *Table) publishLocked(d bmp.Delta) bool {
	if ops := len(d.Adds) + len(d.Dels); ops >= bulkRebuildOps && ops*2 >= len(t.list) {
		t.rebuildLocked()
		return false
	}
	if inc, ok := t.snap.Load().bmp.(bmp.Incremental); ok {
		if nb, applied := inc.ApplyDelta(d); applied {
			t.snap.Store(&tableSnap{bmp: nb})
			return true
		}
	}
	t.rebuildLocked()
	return false
}

// ApplyBatch installs adds and withdraws dels as one mutation batch
// with a single snapshot publication — the bulk-load and churn-feed
// entry point. Adds are applied before dels; callers with interleaved
// same-prefix operations must coalesce to the last op per prefix first.
// Per-route semantics match Add/Del: an add with a worse (higher)
// metric than the installed route is ignored, a del of an absent prefix
// is a no-op. Returns the number of routes actually installed and
// withdrawn.
func (t *Table) ApplyBatch(adds []Route, dels []pkt.Prefix) (nadds, ndels int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := time.Now()
	var d bmp.Delta
	for _, r := range adds {
		p := pkt.PrefixFrom(r.Prefix.Addr, r.Prefix.Len)
		if old, ok := t.list[p]; ok && old.Metric < r.NextHop.Metric {
			continue
		}
		t.list[p] = r.NextHop
		d.Adds = append(d.Adds, bmp.PrefixVal{Prefix: p, Val: r.NextHop})
		nadds++
	}
	for _, p := range dels {
		p = pkt.PrefixFrom(p.Addr, p.Len)
		if _, ok := t.list[p]; !ok {
			continue
		}
		delete(t.list, p)
		d.Dels = append(d.Dels, p)
		ndels++
	}
	if d.Empty() {
		return
	}
	incremental := t.publishLocked(d)
	t.met.RecordBatch(nadds, ndels, len(t.list), incremental, uint64(time.Since(start)))
	return
}

// Add installs or replaces a route. A route with a worse (higher) metric
// than the installed one for the same prefix is ignored.
func (t *Table) Add(p pkt.Prefix, nh NextHop) {
	t.ApplyBatch([]Route{{Prefix: p, NextHop: nh}}, nil)
}

// Del removes a route, reporting whether it existed.
func (t *Table) Del(p pkt.Prefix) bool {
	_, n := t.ApplyBatch(nil, []pkt.Prefix{p})
	return n > 0
}

// Lookup finds the longest-prefix route for a destination. Lock-free:
// one atomic snapshot load, then a walk of an immutable structure.
//
//eisr:fastpath
func (t *Table) Lookup(dst pkt.Addr, c *cycles.Counter) (NextHop, bool) {
	v, _, ok := t.snap.Load().bmp.Lookup(dst, c)
	if !ok {
		return NextHop{}, false
	}
	return v.(NextHop), true
}

// Len returns the number of installed routes.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.list)
}

// Routes lists routes sorted by prefix string (stable for display).
func (t *Table) Routes() []Route {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Route, 0, len(t.list))
	for p, nh := range t.list {
		out = append(out, Route{Prefix: p, NextHop: nh})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.String() < out[j].Prefix.String() })
	return out
}

// ParseRoute parses "PREFIX dev N [via GATEWAY] [metric M]" — the static
// route syntax of the route daemon and pmgr.
func ParseRoute(s string) (Route, error) {
	fields := strings.Fields(s)
	if len(fields) < 3 {
		return Route{}, fmt.Errorf("routing: route needs at least 'PREFIX dev N': %q", s)
	}
	p, err := pkt.ParsePrefix(fields[0])
	if err != nil {
		return Route{}, fmt.Errorf("routing: bad prefix %q: %w", fields[0], err)
	}
	r := Route{Prefix: p}
	i := 1
	for i < len(fields) {
		switch fields[i] {
		case "dev":
			if i+1 >= len(fields) {
				return Route{}, fmt.Errorf("routing: dev needs an argument")
			}
			var idx int32
			if _, err := fmt.Sscanf(fields[i+1], "%d", &idx); err != nil {
				return Route{}, fmt.Errorf("routing: bad device %q", fields[i+1])
			}
			r.NextHop.IfIndex = idx
			i += 2
		case "via":
			if i+1 >= len(fields) {
				return Route{}, fmt.Errorf("routing: via needs an argument")
			}
			gw, err := pkt.ParseAddr(fields[i+1])
			if err != nil {
				return Route{}, fmt.Errorf("routing: bad gateway %q: %w", fields[i+1], err)
			}
			r.NextHop.Gateway = gw
			i += 2
		case "metric":
			if i+1 >= len(fields) {
				return Route{}, fmt.Errorf("routing: metric needs an argument")
			}
			if _, err := fmt.Sscanf(fields[i+1], "%d", &r.NextHop.Metric); err != nil {
				return Route{}, fmt.Errorf("routing: bad metric %q", fields[i+1])
			}
			i += 2
		default:
			return Route{}, fmt.Errorf("routing: unknown keyword %q", fields[i])
		}
	}
	return r, nil
}
