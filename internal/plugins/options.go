package plugins

import (
	"fmt"
	"sync"

	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// OptionsPlugin processes IP options at the options gate — the plugin
// type the paper describes as potentially "a dozen lines of code for an
// IP option plugin". It parses IPv4 options and IPv6 hop-by-hop
// extension headers, counts router alerts, and (in strict mode) drops
// packets carrying unknown options.
type OptionsPlugin struct {
	env   *Env
	namer instanceNamer
}

// NewOptionsPlugin builds the plugin.
func NewOptionsPlugin(env *Env) *OptionsPlugin {
	return &OptionsPlugin{env: env, namer: instanceNamer{prefix: "opt"}}
}

// PluginName implements pcu.Plugin.
func (o *OptionsPlugin) PluginName() string { return "options" }

// PluginCode implements pcu.Plugin.
func (o *OptionsPlugin) PluginCode() pcu.Code { return pcu.MakeCode(pcu.TypeOptions, 1) }

// Callback implements pcu.Plugin.
//
// create-instance args: strict=1 drops packets with unknown options.
func (o *OptionsPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		inst := &OptionsInstance{name: o.namer.next(), strict: msg.Arg("strict", "") != ""}
		msg.Reply = inst
		return nil
	case pcu.MsgFreeInstance:
		o.env.AIU.UnbindInstance(msg.Instance)
		return nil
	case pcu.MsgRegisterInstance:
		return register(o.env, pcu.TypeOptions, msg, nil)
	case pcu.MsgDeregisterInstance:
		return deregister(o.env, pcu.TypeOptions, msg)
	case pcu.MsgCustom:
		if msg.Verb == "stats" {
			inst, ok := msg.Instance.(*OptionsInstance)
			if !ok {
				return fmt.Errorf("plugins: stats needs an instance")
			}
			msg.Reply = inst.Snapshot()
			return nil
		}
		return fmt.Errorf("plugins: options has no message %q", msg.Verb)
	default:
		return fmt.Errorf("plugins: unhandled message kind %v", msg.Kind)
	}
}

// The IPv4 router-alert option type (RFC 2113).
const ipv4RouterAlert = 0x94

// OptionsInstance is one configuration of the option processor.
type OptionsInstance struct {
	name   string
	strict bool

	mu sync.Mutex
	st OptionsStats
}

// OptionsStats counts option events.
type OptionsStats struct {
	Packets      uint64
	RouterAlerts uint64
	Unknown      uint64
	Dropped      uint64
}

// InstanceName implements pcu.Instance.
func (i *OptionsInstance) InstanceName() string { return i.name }

// HandlePacket implements pcu.Instance.
func (i *OptionsInstance) HandlePacket(p *pkt.Packet) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.st.Packets++
	switch p.Version() {
	case 4:
		h, err := pkt.ParseIPv4(p.Data)
		if err != nil {
			return err
		}
		opts := h.Options
		for len(opts) > 0 {
			t := opts[0]
			if t == 0 { // end of options
				break
			}
			if t == 1 { // nop
				opts = opts[1:]
				continue
			}
			if len(opts) < 2 || int(opts[1]) < 2 || int(opts[1]) > len(opts) {
				i.st.Unknown++
				break
			}
			if t == ipv4RouterAlert {
				i.st.RouterAlerts++
			} else {
				i.st.Unknown++
				if i.strict {
					i.st.Dropped++
					p.MarkDrop(fmt.Sprintf("options: unknown IPv4 option %#x", t))
					return nil
				}
			}
			opts = opts[opts[1]:]
		}
	case 6:
		h, err := pkt.ParseIPv6(p.Data)
		if err != nil {
			return err
		}
		if h.NextHeader != pkt.ProtoHopByHop {
			return nil
		}
		hh, err := pkt.ParseHopByHop(p.Data[pkt.IPv6HeaderLen:])
		if err != nil {
			return err
		}
		for _, opt := range hh.Options {
			if opt.Type == pkt.Opt6RouterAlert {
				i.st.RouterAlerts++
				continue
			}
			i.st.Unknown++
			// RFC 2460: the top two bits of an unknown option type say
			// what to do; 00 = skip. Strict mode drops 01..11.
			if i.strict && opt.Type>>6 != 0 {
				i.st.Dropped++
				p.MarkDrop(fmt.Sprintf("options: unknown IPv6 option %d", opt.Type))
				return nil
			}
		}
	}
	return nil
}

// Snapshot returns the counters.
func (i *OptionsInstance) Snapshot() OptionsStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.st
}
