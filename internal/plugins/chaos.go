package plugins

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// ChaosPlugin is the fault-injection plugin driving the isolation
// layer's tests and the chaos-soak CI job: its instances panic, error,
// or delay on a configurable schedule, so the router's panic barrier,
// health tracker, and quarantine path can be exercised with real
// in-dispatch faults rather than synthetic ones.
type ChaosPlugin struct {
	env   *Env
	gate  pcu.Type
	namer instanceNamer
}

// NewChaosPlugin builds a chaos plugin for a gate.
func NewChaosPlugin(env *Env, gate pcu.Type) *ChaosPlugin {
	return &ChaosPlugin{env: env, gate: gate, namer: instanceNamer{prefix: fmt.Sprintf("chaos-%s", gate)}}
}

// PluginName implements pcu.Plugin.
func (c *ChaosPlugin) PluginName() string { return fmt.Sprintf("chaos-%s", c.gate) }

// PluginCode implements pcu.Plugin; impl id 0xfffe marks the chaos
// implementation of a type (0xffff is the null plugin).
func (c *ChaosPlugin) PluginCode() pcu.Code { return pcu.MakeCode(c.gate, 0xfffe) }

// Chaos fault modes.
const (
	ChaosNone  = "none"  // behave like the null plugin
	ChaosPanic = "panic" // panic in HandlePacket
	ChaosError = "error" // return an error from HandlePacket
	ChaosDelay = "delay" // sleep in HandlePacket
)

// Callback implements pcu.Plugin. create-instance args:
//
//	mode=panic|error|delay|none   fault kind (default panic)
//	every=N                       fault on every Nth packet (default 1)
//	delay=DUR                     sleep length for mode=delay (default 1ms)
//
// Custom messages: "stats" reports call/fault counts; "panic" panics
// inside the control callback itself (exercising the control barrier).
func (c *ChaosPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		mode := msg.Arg("mode", ChaosPanic)
		switch mode {
		case ChaosNone, ChaosPanic, ChaosError, ChaosDelay:
		default:
			return fmt.Errorf("plugins: chaos mode %q (want panic, error, delay, or none)", mode)
		}
		every, err := argInt(msg, "every", 1)
		if err != nil {
			return err
		}
		if every < 1 {
			return fmt.Errorf("plugins: chaos every=%d must be >= 1", every)
		}
		delay := time.Millisecond
		if s, ok := msg.Args["delay"]; ok {
			d, err := time.ParseDuration(s)
			if err != nil {
				return fmt.Errorf("plugins: bad delay=%q: %w", s, err)
			}
			delay = d
		}
		msg.Reply = &ChaosInstance{
			name: c.namer.next(), code: c.PluginCode(),
			mode: mode, every: uint64(every), delay: delay,
		}
		return nil
	case pcu.MsgFreeInstance:
		c.env.AIU.UnbindInstance(msg.Instance)
		return nil
	case pcu.MsgRegisterInstance:
		return register(c.env, c.gate, msg, nil)
	case pcu.MsgDeregisterInstance:
		return deregister(c.env, c.gate, msg)
	case pcu.MsgCustom:
		switch msg.Verb {
		case "stats":
			inst, ok := msg.Instance.(*ChaosInstance)
			if !ok {
				return fmt.Errorf("plugins: chaos stats needs an instance")
			}
			msg.Reply = map[string]uint64{
				"calls":  inst.calls.Load(),
				"faults": inst.faults.Load(),
			}
			return nil
		case "panic":
			panic("chaos: control-path panic requested")
		default:
			return fmt.Errorf("plugins: chaos plugin has no message %q", msg.Verb)
		}
	default:
		return fmt.Errorf("plugins: chaos plugin: unhandled message kind %v", msg.Kind)
	}
}

// ChaosInstance misbehaves on schedule. Counters are atomic: with a
// worker pool several workers may dispatch through one instance
// concurrently.
type ChaosInstance struct {
	name  string
	code  pcu.Code
	mode  string
	every uint64
	delay time.Duration

	calls  atomic.Uint64
	faults atomic.Uint64
}

// InstanceName implements pcu.Instance.
func (i *ChaosInstance) InstanceName() string { return i.name }

// PluginCode lets the fault barrier attribute faults to the exact
// plugin code instead of the gate's generic code.
func (i *ChaosInstance) PluginCode() pcu.Code { return i.code }

// Calls reports handler invocations (tests).
func (i *ChaosInstance) Calls() uint64 { return i.calls.Load() }

// Faults reports injected faults (tests).
func (i *ChaosInstance) Faults() uint64 { return i.faults.Load() }

// HandlePacket implements pcu.Instance: every i.every-th call it
// injects the configured fault.
func (i *ChaosInstance) HandlePacket(p *pkt.Packet) error {
	n := i.calls.Add(1)
	if i.mode == ChaosNone || n%i.every != 0 {
		return nil
	}
	i.faults.Add(1)
	switch i.mode {
	case ChaosPanic:
		panic(fmt.Sprintf("chaos: injected panic (call %d)", n))
	case ChaosError:
		return fmt.Errorf("chaos: injected error (call %d)", n)
	case ChaosDelay:
		time.Sleep(i.delay)
	}
	return nil
}
