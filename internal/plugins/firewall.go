package plugins

import (
	"fmt"
	"sync"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// FirewallPlugin is the firewall plugin the paper envisions (§2 names
// firewalls as a primary application: "it is very important to be able
// to quickly and efficiently classify packets into flows, and to apply
// different policies to different flows"). Verdicts are per-filter hard
// state: each register-instance carries action=allow|deny, and the
// instance applies the verdict of the filter its flow matched. The
// instance's default policy covers unmatched flows reaching the gate.
type FirewallPlugin struct {
	env   *Env
	namer instanceNamer
}

// NewFirewallPlugin builds the plugin.
func NewFirewallPlugin(env *Env) *FirewallPlugin {
	return &FirewallPlugin{env: env, namer: instanceNamer{prefix: "fw"}}
}

// PluginName implements pcu.Plugin.
func (f *FirewallPlugin) PluginName() string { return "firewall" }

// PluginCode implements pcu.Plugin.
func (f *FirewallPlugin) PluginCode() pcu.Code { return pcu.MakeCode(pcu.TypeFirewall, 1) }

// Verdict is the per-filter firewall action.
type Verdict bool

// The verdicts.
const (
	Allow Verdict = true
	Deny  Verdict = false
)

// Callback implements pcu.Plugin.
//
// create-instance args: default=allow|deny (allow).
// register-instance args: filter=SPEC, action=allow|deny (deny).
func (f *FirewallPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		def := msg.Arg("default", "allow")
		if def != "allow" && def != "deny" {
			return fmt.Errorf("plugins: bad default policy %q", def)
		}
		inst := &FirewallInstance{name: f.namer.next(), defaultAllow: def == "allow"}
		inst.slot, _ = f.env.AIU.Slot(pcu.TypeFirewall)
		msg.Reply = inst
		return nil
	case pcu.MsgFreeInstance:
		f.env.AIU.UnbindInstance(msg.Instance)
		return nil
	case pcu.MsgRegisterInstance:
		action := msg.Arg("action", "deny")
		var v Verdict
		switch action {
		case "allow":
			v = Allow
		case "deny":
			v = Deny
		default:
			return fmt.Errorf("plugins: bad action %q", action)
		}
		return register(f.env, pcu.TypeFirewall, msg, v)
	case pcu.MsgDeregisterInstance:
		return deregister(f.env, pcu.TypeFirewall, msg)
	case pcu.MsgCustom:
		if msg.Verb == "stats" {
			inst, ok := msg.Instance.(*FirewallInstance)
			if !ok {
				return fmt.Errorf("plugins: stats needs an instance")
			}
			msg.Reply = inst.Snapshot()
			return nil
		}
		return fmt.Errorf("plugins: firewall has no message %q", msg.Verb)
	default:
		return fmt.Errorf("plugins: unhandled message kind %v", msg.Kind)
	}
}

// FirewallInstance applies verdicts.
type FirewallInstance struct {
	name         string
	slot         int
	defaultAllow bool

	mu sync.Mutex
	st FirewallStats
}

// FirewallStats counts firewall decisions.
type FirewallStats struct {
	Allowed uint64
	Denied  uint64
}

// InstanceName implements pcu.Instance.
func (i *FirewallInstance) InstanceName() string { return i.name }

// HandlePacket implements pcu.Instance.
func (i *FirewallInstance) HandlePacket(p *pkt.Packet) error {
	allow := i.defaultAllow
	if rec, _ := p.FIX.(*aiu.FlowRecord); rec != nil {
		if b := rec.Bind(i.slot); b.Rec != nil {
			if v, ok := b.Rec.Private.(Verdict); ok {
				allow = bool(v)
			}
		}
	}
	i.mu.Lock()
	if allow {
		i.st.Allowed++
	} else {
		i.st.Denied++
	}
	i.mu.Unlock()
	if !allow {
		p.MarkDrop("firewall: denied")
	}
	return nil
}

// HandleBatch implements pcu.BatchHandler: the same per-packet verdict
// cascade as HandlePacket, with the decision counters accumulated
// locally and merged under one mutex acquisition per batch instead of
// one per packet. Denied packets are marked (the core honors p.Drop
// after the dispatch exactly as it honors a HandlePacket error).
func (i *FirewallInstance) HandleBatch(ps []*pkt.Packet) {
	var allowed, denied uint64
	for _, p := range ps {
		allow := i.defaultAllow
		if rec, _ := p.FIX.(*aiu.FlowRecord); rec != nil {
			if b := rec.Bind(i.slot); b.Rec != nil {
				if v, ok := b.Rec.Private.(Verdict); ok {
					allow = bool(v)
				}
			}
		}
		if allow {
			allowed++
		} else {
			denied++
			p.MarkDrop("firewall: denied")
		}
	}
	i.mu.Lock()
	i.st.Allowed += allowed
	i.st.Denied += denied
	i.mu.Unlock()
}

// Snapshot returns the counters.
func (i *FirewallInstance) Snapshot() FirewallStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.st
}
