package plugins

import (
	"errors"
	"fmt"
	"sync"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/sched"
)

// DRRPlugin is the weighted Deficit Round Robin scheduling plugin of
// §6.1. Because the AIU already classifies packets into flows and gives
// the plugin a per-flow soft-state slot in the flow record, the plugin
// itself is small: each flow lazily receives its own queue (perfect
// per-flow fair queuing, not a fixed hash bucket like ALTQ), weighted by
// the reservation installed with the flow's filter.
type DRRPlugin struct {
	env   *Env
	namer instanceNamer
}

// NewDRRPlugin builds the plugin.
func NewDRRPlugin(env *Env) *DRRPlugin {
	return &DRRPlugin{env: env, namer: instanceNamer{prefix: "drr"}}
}

// PluginName implements pcu.Plugin.
func (d *DRRPlugin) PluginName() string { return "drr" }

// PluginCode implements pcu.Plugin.
func (d *DRRPlugin) PluginCode() pcu.Code { return pcu.MakeCode(pcu.TypeSched, 1) }

// Callback implements pcu.Plugin.
//
// create-instance args: iface=N (required), quantum=BYTES, qlen=PKTS.
// register-instance args: filter=SPEC, weight=W (reserved flows).
// Custom messages: "stats" replies with a []FlowShare snapshot.
func (d *DRRPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		ifIdx, err := argIf(msg)
		if err != nil {
			return err
		}
		quantum, err := argInt(msg, "quantum", 1500)
		if err != nil {
			return err
		}
		qlen, err := argInt(msg, "qlen", 128)
		if err != nil {
			return err
		}
		inst := &DRRInstance{
			name: d.namer.next(), env: d.env, ifIdx: ifIdx,
			drr: sched.NewDRR(quantum, qlen),
		}
		inst.drr.Tel = d.env.Tel.SchedMetrics("drr", inst.name)
		if slot, ok := d.env.AIU.Slot(pcu.TypeSched); ok {
			inst.slot = slot
		} else {
			return fmt.Errorf("plugins: AIU has no scheduling gate")
		}
		if d.env.Router != nil {
			d.env.Router.RegisterDrainer(ifIdx, inst)
		}
		msg.Reply = inst
		return nil
	case pcu.MsgFreeInstance:
		inst, ok := msg.Instance.(*DRRInstance)
		if !ok {
			return fmt.Errorf("plugins: not a DRR instance")
		}
		if d.env.Router != nil {
			d.env.Router.UnregisterDrainer(inst.ifIdx, inst)
		}
		d.env.AIU.UnbindInstance(inst)
		return nil
	case pcu.MsgRegisterInstance:
		w, err := argFloat(msg, "weight", 1)
		if err != nil {
			return err
		}
		return register(d.env, pcu.TypeSched, msg, &Reservation{Weight: w})
	case pcu.MsgDeregisterInstance:
		return deregister(d.env, pcu.TypeSched, msg)
	case pcu.MsgCustom:
		switch msg.Verb {
		case "stats":
			inst, ok := msg.Instance.(*DRRInstance)
			if !ok {
				return fmt.Errorf("plugins: stats needs an instance")
			}
			msg.Reply = inst.Shares()
			return nil
		}
		return fmt.Errorf("plugins: drr has no message %q", msg.Verb)
	default:
		return fmt.Errorf("plugins: unhandled message kind %v", msg.Kind)
	}
}

// DRRInstance is one interface's DRR scheduler.
type DRRInstance struct {
	name  string
	env   *Env
	ifIdx int32
	slot  int

	mu  sync.Mutex
	drr *sched.DRR
}

// InstanceName implements pcu.Instance.
func (i *DRRInstance) InstanceName() string { return i.name }

// IfIndex reports the interface this instance schedules.
func (i *DRRInstance) IfIndex() int32 { return i.ifIdx }

// errNoFlowRecord is preallocated: HandlePacket runs per packet and must
// not allocate an error on the drop path.
var errNoFlowRecord = errors.New("drr: packet carries no flow record")

// HandlePacket implements pcu.Instance: find (or create) the flow's
// queue via the flow record's soft-state slot and enqueue. The per-flow
// queue pointer lives exactly where the paper puts it — in the flow
// table row ("used by the DRR plugin to store a pointer to a queue of
// packets for each active flow").
//
//eisr:fastpath
func (i *DRRInstance) HandlePacket(p *pkt.Packet) error {
	rec, _ := p.FIX.(*aiu.FlowRecord)
	if rec == nil {
		return errNoFlowRecord
	}
	b := rec.Bind(i.slot)
	q, _ := b.Private.(*sched.DRRQueue)
	//eisr:allow(fastpath) per-instance queue mutex, bounded critical section, never held across a plugin or channel boundary
	i.mu.Lock()
	if q == nil {
		q = i.newFlowQueue(rec, b)
	}
	err := i.drr.EnqueueFlow(q, p)
	i.mu.Unlock()
	return err
}

// HandleBatch implements pcu.BatchHandler: the same per-packet enqueue
// as HandlePacket under one queue-mutex acquisition for the whole batch
// — the lock/unlock pair and its cache-line bounce amortize across the
// run. Rejected packets (no flow record, full queue) are marked with
// the same preallocated reasons the scalar path returns as errors; the
// core honors p.Drop after the dispatch exactly as it honors those.
//
//eisr:fastpath
func (i *DRRInstance) HandleBatch(ps []*pkt.Packet) {
	//eisr:allow(fastpath) per-instance queue mutex, bounded critical section, never held across a plugin or channel boundary
	i.mu.Lock()
	for _, p := range ps {
		rec, _ := p.FIX.(*aiu.FlowRecord)
		if rec == nil {
			p.MarkDrop(errNoFlowRecord.Error())
			continue
		}
		b := rec.Bind(i.slot)
		q, _ := b.Private.(*sched.DRRQueue)
		if q == nil {
			q = i.newFlowQueue(rec, b)
		}
		if err := i.drr.EnqueueFlow(q, p); err != nil {
			p.MarkDrop(err.Error())
		}
	}
	i.mu.Unlock()
}

// newFlowQueue lazily creates the flow's queue on its first packet — the
// once-per-flow slow path. Called with i.mu held.
//
//eisr:slowpath
func (i *DRRInstance) newFlowQueue(rec *aiu.FlowRecord, b *aiu.GateBind) *sched.DRRQueue {
	weight := 1.0
	if b.Rec != nil {
		if res, ok := b.Rec.Private.(*Reservation); ok && res.Weight > 0 {
			weight = res.Weight
		}
	}
	q := i.drr.NewQueue(rec.Key.String(), weight)
	b.Private = q
	return q
}

// Drain implements ipcore.Drainer.
func (i *DRRInstance) Drain() *pkt.Packet {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.drr.Dequeue()
}

// Backlog implements ipcore.Drainer.
func (i *DRRInstance) Backlog() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.drr.Len()
}

// FlowEvicted implements aiu.FlowEvictListener: reclaim the per-flow
// queue when the AIU recycles the flow record. The evicted key and slot
// contents arrive by value because the callback is delivered after the
// table lock is dropped, by which point the record may already serve a
// new flow.
func (i *DRRInstance) FlowEvicted(key pkt.Key, slot int, b aiu.GateBind) {
	q, _ := b.Private.(*sched.DRRQueue)
	if q == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.drr.RemoveQueue(q)
}

// FlowShare is one flow's service snapshot.
type FlowShare struct {
	Label  string
	Weight float64
	Served uint64
	Drops  uint64
}

// Shares snapshots per-flow service for the link-sharing demos.
func (i *DRRInstance) Shares() []FlowShare {
	i.mu.Lock()
	defer i.mu.Unlock()
	var out []FlowShare
	for _, q := range i.drr.Queues() {
		out = append(out, FlowShare{Label: q.Label, Weight: q.Weight, Served: q.Served, Drops: q.Drops})
	}
	return out
}

// Scheduler exposes the underlying DRR for simulators.
func (i *DRRInstance) Scheduler() *sched.DRR { return i.drr }
