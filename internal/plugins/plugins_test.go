package plugins

import (
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

// rig wires a full plugin-mode router with a PCU.
type rig struct {
	env  *Env
	reg  *pcu.Registry
	r    *ipcore.Router
	a    *aiu.AIU
	sink *netdev.Interface
}

func newRig(t *testing.T, gates ...pcu.Type) *rig {
	t.Helper()
	if gates == nil {
		gates = ipcore.DefaultGates
	}
	routes, err := routing.New(bmp.KindBSPL)
	if err != nil {
		t.Fatal(err)
	}
	routes.Add(pkt.MustParsePrefix("0.0.0.0/0"), routing.NextHop{IfIndex: 1})
	a := aiu.New(aiu.Config{InitialFlows: 64, MaxFlows: 1024, FlowBuckets: 512}, gates...)
	r, err := ipcore.New(ipcore.Config{
		Mode: ipcore.ModePlugin, AIU: a, Routes: routes, Gates: gates,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := netdev.NewInterface(0, netdev.Config{})
	out := netdev.NewInterface(1, netdev.Config{})
	sink := netdev.NewInterface(2, netdev.Config{})
	netdev.Connect(out, sink)
	r.AddInterface(in)
	r.AddInterface(out)
	env := &Env{Router: r, AIU: a}
	return &rig{env: env, reg: pcu.NewRegistry(), r: r, a: a, sink: sink}
}

// create sends create-instance and returns the instance.
func (rg *rig) create(t *testing.T, plugin string, args map[string]string) pcu.Instance {
	t.Helper()
	msg := &pcu.Message{Kind: pcu.MsgCreateInstance, Args: args}
	if err := rg.reg.Send(plugin, msg); err != nil {
		t.Fatal(err)
	}
	return msg.Reply.(pcu.Instance)
}

// bind sends register-instance.
func (rg *rig) bind(t *testing.T, plugin string, inst pcu.Instance, args map[string]string) {
	t.Helper()
	msg := &pcu.Message{Kind: pcu.MsgRegisterInstance, Instance: inst, Args: args}
	if err := rg.reg.Send(plugin, msg); err != nil {
		t.Fatal(err)
	}
}

func udp(t *testing.T, src string, sport uint16, size int) *pkt.Packet {
	t.Helper()
	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr(src), Dst: pkt.MustParseAddr("20.0.0.1"),
		SrcPort: sport, DstPort: 9, Payload: make([]byte, size),
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pkt.NewPacket(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Stamp = time.Now()
	return p
}

func TestDRRPluginEndToEnd(t *testing.T) {
	rg := newRig(t)
	if err := rg.reg.Load(NewDRRPlugin(rg.env)); err != nil {
		t.Fatal(err)
	}
	inst := rg.create(t, "drr", map[string]string{"iface": "1", "quantum": "1500"})
	drr := inst.(*DRRInstance)
	// Reserved flow gets weight 3; everything else weight 1.
	rg.bind(t, "drr", inst, map[string]string{
		"filter": "10.0.0.1, *, UDP, 111, *, *", "weight": "3",
	})
	rg.bind(t, "drr", inst, map[string]string{"filter": "*, *, *, *, *, *"})

	// Backlog two flows without draining.
	for i := 0; i < 60; i++ {
		if !rg.r.Forward(udp(t, "10.0.0.1", 111, 500)) {
			t.Fatal("forward reserved failed")
		}
		if !rg.r.Forward(udp(t, "10.0.0.2", 222, 500)) {
			t.Fatal("forward best-effort failed")
		}
	}
	if drr.Backlog() != 120 {
		t.Fatalf("backlog = %d", drr.Backlog())
	}
	// Serve 60 packets; reserved flow should get ~3x the service.
	for i := 0; i < 60; i++ {
		rg.r.TxDrain(1, 1)
	}
	var reserved, best uint64
	for _, s := range drr.Shares() {
		if s.Weight == 3 {
			reserved = s.Served
		} else {
			best = s.Served
		}
	}
	if reserved == 0 || best == 0 {
		t.Fatalf("shares: reserved=%d best=%d", reserved, best)
	}
	ratio := float64(reserved) / float64(best)
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("weighted share ratio = %.2f want ~3", ratio)
	}
}

func TestDRRPluginFlowEviction(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewDRRPlugin(rg.env))
	inst := rg.create(t, "drr", map[string]string{"iface": "1"}).(*DRRInstance)
	rg.bind(t, "drr", inst, map[string]string{"filter": "*, *, *, *, *, *"})
	rg.r.Forward(udp(t, "10.0.0.1", 1, 100))
	if got := len(inst.Scheduler().Queues()); got != 1 {
		t.Fatalf("queues = %d", got)
	}
	// Evict the flow: its queue must be reclaimed.
	rg.a.FlowTable().FlushWhere(func(*aiu.FlowRecord) bool { return true })
	if got := len(inst.Scheduler().Queues()); got != 0 {
		t.Errorf("queues after eviction = %d", got)
	}
}

func TestHFSCPluginClassesAndBinding(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewHFSCPlugin(rg.env))
	inst := rg.create(t, "hfsc", map[string]string{"iface": "1", "rate": "1000000"}).(*HFSCInstance)
	if err := rg.reg.Send("hfsc", &pcu.Message{
		Kind: pcu.MsgCustom, Verb: "add-class", Instance: inst,
		Args: map[string]string{"name": "video", "rt": "300000", "ls": "300000"},
	}); err != nil {
		t.Fatal(err)
	}
	rg.bind(t, "hfsc", inst, map[string]string{
		"filter": "10.0.0.1, *, UDP, *, *, *", "class": "video",
	})
	// Catch-all so every other flow reaches the instance's default
	// class rather than bypassing the scheduler.
	rg.bind(t, "hfsc", inst, map[string]string{"filter": "*, *, *, *, *, *"})
	// Unknown class rejected.
	msg := &pcu.Message{Kind: pcu.MsgRegisterInstance, Instance: inst,
		Args: map[string]string{"filter": "*, *, *, *, *, *", "class": "nonesuch"}}
	if err := rg.reg.Send("hfsc", msg); err == nil {
		t.Error("binding to unknown class should fail")
	}
	// Traffic lands in the right class; unbound flows hit default.
	for i := 0; i < 5; i++ {
		rg.r.Forward(udp(t, "10.0.0.1", 1, 500))
		rg.r.Forward(udp(t, "99.0.0.9", 2, 500))
	}
	if got := inst.Class("video"); got == nil {
		t.Fatal("class lost")
	}
	if inst.Backlog() != 10 {
		t.Fatalf("backlog = %d", inst.Backlog())
	}
	for i := 0; i < 10; i++ {
		if rg.r.TxDrain(1, 1) != 1 {
			t.Fatalf("drain %d failed", i)
		}
	}
	stats := inst.ClassStats()
	var video, def uint64
	for _, cs := range stats {
		switch cs.Name {
		case "video":
			video = cs.Served
		case "default":
			def = cs.Served
		}
	}
	if video == 0 || def == 0 {
		t.Errorf("class service: video=%d default=%d", video, def)
	}
}

func TestParseCurve(t *testing.T) {
	c, err := ParseCurve("125000")
	if err != nil || c.M1 != 125000 || c.M2 != 125000 {
		t.Errorf("linear: %+v %v", c, err)
	}
	c, err = ParseCurve("800000,0.01,200000")
	if err != nil || c.M1 != 8e5 || c.D != 0.01 || c.M2 != 2e5 {
		t.Errorf("two-piece: %+v %v", c, err)
	}
	if _, err := ParseCurve("a,b"); err == nil {
		t.Error("bad curve accepted")
	}
}

func TestFirewallPlugin(t *testing.T) {
	gates := []pcu.Type{pcu.TypeFirewall, pcu.TypeRouting, pcu.TypeSched}
	rg := newRig(t, gates...)
	rg.reg.Load(NewFirewallPlugin(rg.env))
	inst := rg.create(t, "firewall", map[string]string{"default": "allow"}).(*FirewallInstance)
	rg.bind(t, "firewall", inst, map[string]string{
		"filter": "10.66.0.0/16, *, *, *, *, *", "action": "deny",
	})
	rg.bind(t, "firewall", inst, map[string]string{
		"filter": "*, *, *, *, *, *", "action": "allow",
	})
	if !rg.r.ProcessOne(udp(t, "10.1.1.1", 1, 10)) {
		t.Error("allowed flow dropped")
	}
	if rg.r.ProcessOne(udp(t, "10.66.3.4", 1, 10)) {
		t.Error("denied flow forwarded")
	}
	st := inst.Snapshot()
	if st.Allowed != 1 || st.Denied != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestOptionsPluginRouterAlert(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewOptionsPlugin(rg.env))
	inst := rg.create(t, "options", nil).(*OptionsInstance)
	rg.bind(t, "options", inst, map[string]string{"filter": "*, *, *, *, *, *"})
	data, _ := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("2001:db8::1"), Dst: pkt.MustParseAddr("2001:db8::2"),
		SrcPort: 1, DstPort: 2, Payload: []byte("x"),
		HopByHop: []pkt.HopByHopOption{{Type: pkt.Opt6RouterAlert, Data: []byte{0, 0}}},
	})
	p, _ := pkt.NewPacket(data, 0)
	p.Stamp = time.Now()
	// Need a v6 route.
	rg.r.Routes().Add(pkt.MustParsePrefix("2000::/3"), routing.NextHop{IfIndex: 1})
	if !rg.r.ProcessOne(p) {
		t.Fatal("v6 packet dropped")
	}
	if st := inst.Snapshot(); st.RouterAlerts != 1 || st.Packets != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestStatsPluginReport(t *testing.T) {
	gates := []pcu.Type{pcu.TypeStats, pcu.TypeRouting, pcu.TypeSched}
	rg := newRig(t, gates...)
	rg.reg.Load(NewStatsPlugin(rg.env))
	inst := rg.create(t, "stats", nil).(*StatsInstance)
	rg.bind(t, "stats", inst, map[string]string{"filter": "*, *, *, *, *, *"})
	for i := 0; i < 4; i++ {
		rg.r.ProcessOne(udp(t, "10.0.0.1", 1, 100))
	}
	rg.r.ProcessOne(udp(t, "10.0.0.2", 2, 300))
	rep := inst.Report()
	if rep.Total.Packets != 5 {
		t.Fatalf("total = %+v", rep.Total)
	}
	if len(rep.TopFlows) != 2 {
		t.Fatalf("flows = %d", len(rep.TopFlows))
	}
	// Sorted by bytes: 4x128B vs 1x328B -> the 4-packet flow leads.
	if rep.TopFlows[0].Packets != 4 {
		t.Errorf("top flow = %+v", rep.TopFlows[0])
	}
	if rep.ByProto[pkt.ProtoUDP].Packets != 5 {
		t.Errorf("by-proto = %+v", rep.ByProto)
	}
	inst.Reset()
	if rep := inst.Report(); rep.Total.Packets != 0 {
		t.Error("reset did not clear")
	}
}

func TestTCPMonDetectsRetransmissions(t *testing.T) {
	gates := []pcu.Type{pcu.TypeMonitor, pcu.TypeRouting, pcu.TypeSched}
	rg := newRig(t, gates...)
	rg.reg.Load(NewTCPMonPlugin(rg.env))
	inst := rg.create(t, "tcpmon", nil).(*TCPMonInstance)
	rg.bind(t, "tcpmon", inst, map[string]string{"filter": "*, *, TCP, *, *, *"})

	send := func(seq uint32, flags uint8) {
		data, _ := pkt.BuildTCP(pkt.TCPSpec{
			Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("20.0.0.1"),
			SrcPort: 5555, DstPort: 80, Seq: seq, Flags: flags, Payload: []byte("seg"),
		})
		p, _ := pkt.NewPacket(data, 0)
		p.Stamp = time.Now()
		rg.r.ProcessOne(p)
	}
	send(100, pkt.TCPSyn)
	send(101, pkt.TCPAck)
	send(104, pkt.TCPAck)
	send(101, pkt.TCPAck) // retransmission
	send(104, pkt.TCPAck) // retransmission
	rep := inst.Report()
	if len(rep) != 1 {
		t.Fatalf("flows = %d", len(rep))
	}
	st := rep[0]
	if st.Syns != 1 || st.Packets != 5 {
		t.Errorf("state: %+v", st)
	}
	if st.Retrans != 2 {
		t.Errorf("retransmissions = %d want 2", st.Retrans)
	}
}

func TestRoutePluginL4Switching(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewRoutePlugin(rg.env))
	inst := rg.create(t, "l4route", nil).(*RouteInstance)
	// Web traffic from 10/8 goes out if 0 (back where it came, for the
	// test) instead of the default if 1.
	rg.bind(t, "l4route", inst, map[string]string{
		"filter": "10.0.0.0/8, *, UDP, *, 9, *", "dev": "0",
	})
	p := udp(t, "10.0.0.1", 1234, 10)
	if !rg.r.Forward(p) {
		t.Fatal("forward failed")
	}
	if p.OutIf != 0 {
		t.Errorf("L4-switched OutIf = %d want 0", p.OutIf)
	}
	// Unmatched flow takes the destination route.
	q := udp(t, "77.0.0.1", 1, 10)
	rg.r.Forward(q)
	if q.OutIf != 1 {
		t.Errorf("default OutIf = %d want 1", q.OutIf)
	}
	if st := inst.Snapshot(); st.Switched != 1 {
		t.Errorf("switched = %d", st.Switched)
	}
}

func TestREDPluginDropsUnderLoad(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewREDPlugin(rg.env))
	inst := rg.create(t, "red", map[string]string{
		"iface": "1", "minth": "5", "maxth": "15", "qlen": "32",
	}).(*REDInstance)
	rg.bind(t, "red", inst, map[string]string{"filter": "*, *, *, *, *, *"})
	// Flood without draining: early drops must kick in between minth
	// and the hard queue limit.
	forwarded := 0
	for i := 0; i < 64; i++ {
		if rg.r.Forward(udp(t, "10.0.0.1", 1, 100)) {
			forwarded++
		}
	}
	st := inst.Snapshot()
	if st.EarlyDrops == 0 {
		t.Error("no early drops under sustained overload")
	}
	if st.Enqueued == 0 {
		t.Error("nothing enqueued")
	}
	if int(st.Enqueued) > 32 {
		t.Errorf("enqueued %d beyond queue limit", st.Enqueued)
	}
	// Light load after drain: no drops.
	for inst.Drain() != nil {
	}
	inst2 := rg.create(t, "red", map[string]string{"iface": "1", "minth": "5", "maxth": "15"}).(*REDInstance)
	for i := 0; i < 3; i++ {
		inst2.HandlePacket(udp(t, "10.0.0.9", 3, 50))
		inst2.Drain()
	}
	if st := inst2.Snapshot(); st.EarlyDrops != 0 {
		t.Errorf("early drops at low load: %+v", st)
	}
}

func TestNullPluginDispatch(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewNullPlugin(rg.env, pcu.TypeSecurity))
	inst := rg.create(t, "null-security", nil).(*NullInstance)
	rg.bind(t, "null-security", inst, map[string]string{"filter": "*, *, *, *, *, *"})
	for i := 0; i < 7; i++ {
		rg.r.ProcessOne(udp(t, "10.0.0.1", 1, 10))
	}
	if inst.Calls != 7 {
		t.Errorf("null instance called %d times", inst.Calls)
	}
}

func TestFreeInstanceClearsBindings(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewDRRPlugin(rg.env))
	inst := rg.create(t, "drr", map[string]string{"iface": "1"})
	rg.bind(t, "drr", inst, map[string]string{"filter": "*, *, *, *, *, *"})
	if err := rg.reg.Send("drr", &pcu.Message{Kind: pcu.MsgFreeInstance, Instance: inst}); err != nil {
		t.Fatal(err)
	}
	ft, _ := rg.a.Table(pcu.TypeSched)
	if len(ft.Records()) != 0 {
		t.Error("filter bindings survive free-instance")
	}
	// The drainer is gone: forwarded packets take the default FIFO.
	p := udp(t, "10.0.0.1", 1, 10)
	if !rg.r.ProcessOne(p) {
		t.Fatal("forward after free failed")
	}
	if rg.sink.Poll() == nil {
		t.Error("packet lost after free-instance")
	}
}

func TestDeregisterInstanceMessage(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewDRRPlugin(rg.env))
	inst := rg.create(t, "drr", map[string]string{"iface": "1"})
	rg.bind(t, "drr", inst, map[string]string{"filter": "10.0.0.0/8, *, UDP, *, *, *"})
	msg := &pcu.Message{
		Kind: pcu.MsgDeregisterInstance, Instance: inst,
		Args: map[string]string{"filter": "10.0.0.0/8, *, UDP, *, *, *"},
	}
	if err := rg.reg.Send("drr", msg); err != nil {
		t.Fatal(err)
	}
	ft, _ := rg.a.Table(pcu.TypeSched)
	if len(ft.Records()) != 0 {
		t.Error("deregister left the binding")
	}
	// Unknown filter errors.
	if err := rg.reg.Send("drr", msg); err == nil {
		t.Error("double deregister should fail")
	}
}

func TestPCURegistryLifecycle(t *testing.T) {
	rg := newRig(t)
	pl := NewDRRPlugin(rg.env)
	if err := rg.reg.Load(pl); err != nil {
		t.Fatal(err)
	}
	if err := rg.reg.Load(pl); err == nil {
		t.Error("duplicate load accepted")
	}
	inst := rg.create(t, "drr", map[string]string{"iface": "1"})
	if got := rg.reg.Instances(pl.PluginCode()); len(got) != 1 || got[0] != inst {
		t.Errorf("instances = %v", got)
	}
	if _, err := rg.reg.FindInstance("drr", inst.InstanceName()); err != nil {
		t.Error(err)
	}
	if err := rg.reg.Unload("drr"); err == nil {
		t.Error("unload with live instances accepted")
	}
	rg.reg.Send("drr", &pcu.Message{Kind: pcu.MsgFreeInstance, Instance: inst})
	if err := rg.reg.Unload("drr"); err != nil {
		t.Error(err)
	}
	if err := rg.reg.Send("drr", &pcu.Message{Kind: pcu.MsgCreateInstance}); err == nil {
		t.Error("send to unloaded plugin accepted")
	}
}
