package plugins

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/sched"
)

// REDPlugin implements Random Early Detection [Floyd & Jacobson 93] as a
// scheduling-type plugin (§4 lists "a plugin for congestion control
// mechanisms (e.g., RED)" among the envisioned types; it shares the
// scheduling gate, distinguished by its implementation id). An instance
// owns a FIFO output queue whose admission is governed by the RED
// average-queue estimator.
type REDPlugin struct {
	env   *Env
	namer instanceNamer
}

// NewREDPlugin builds the plugin.
func NewREDPlugin(env *Env) *REDPlugin {
	return &REDPlugin{env: env, namer: instanceNamer{prefix: "red"}}
}

// PluginName implements pcu.Plugin.
func (r *REDPlugin) PluginName() string { return "red" }

// PluginCode implements pcu.Plugin.
func (r *REDPlugin) PluginCode() pcu.Code { return pcu.MakeCode(pcu.TypeSched, 3) }

// Callback implements pcu.Plugin.
//
// create-instance args: iface=N, minth=PKTS (5), maxth=PKTS (15),
// maxp=PROB (0.1), wq=WEIGHT (0.2), qlen=PKTS (64), seed=N.
func (r *REDPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		ifIdx, err := argIf(msg)
		if err != nil {
			return err
		}
		minth, err := argInt(msg, "minth", 5)
		if err != nil {
			return err
		}
		maxth, err := argInt(msg, "maxth", 15)
		if err != nil {
			return err
		}
		maxp, err := argFloat(msg, "maxp", 0.1)
		if err != nil {
			return err
		}
		wq, err := argFloat(msg, "wq", 0.2)
		if err != nil {
			return err
		}
		qlen, err := argInt(msg, "qlen", 64)
		if err != nil {
			return err
		}
		seed, err := argInt(msg, "seed", 1)
		if err != nil {
			return err
		}
		if minth >= maxth {
			return fmt.Errorf("plugins: red requires minth < maxth")
		}
		inst := &REDInstance{
			name: r.namer.next(), ifIdx: ifIdx,
			minth: float64(minth), maxth: float64(maxth), maxp: maxp, wq: wq,
			fifo: sched.NewFIFO(qlen), rng: rand.New(rand.NewSource(int64(seed))),
		}
		if r.env.Router != nil {
			r.env.Router.RegisterDrainer(ifIdx, inst)
		}
		msg.Reply = inst
		return nil
	case pcu.MsgFreeInstance:
		inst, ok := msg.Instance.(*REDInstance)
		if !ok {
			return fmt.Errorf("plugins: not a RED instance")
		}
		if r.env.Router != nil {
			r.env.Router.UnregisterDrainer(inst.ifIdx, inst)
		}
		r.env.AIU.UnbindInstance(inst)
		return nil
	case pcu.MsgRegisterInstance:
		return register(r.env, pcu.TypeSched, msg, nil)
	case pcu.MsgDeregisterInstance:
		return deregister(r.env, pcu.TypeSched, msg)
	case pcu.MsgCustom:
		if msg.Verb == "stats" {
			inst, ok := msg.Instance.(*REDInstance)
			if !ok {
				return fmt.Errorf("plugins: stats needs an instance")
			}
			msg.Reply = inst.Snapshot()
			return nil
		}
		return fmt.Errorf("plugins: red has no message %q", msg.Verb)
	default:
		return fmt.Errorf("plugins: unhandled message kind %v", msg.Kind)
	}
}

// REDInstance is one interface's RED queue.
type REDInstance struct {
	name  string
	ifIdx int32

	mu    sync.Mutex
	fifo  *sched.FIFO
	avg   float64
	count int // packets since last drop
	rng   *rand.Rand

	minth, maxth, maxp, wq float64

	// REDStats fields.
	enq, earlyDrops, tailDrops uint64
}

// REDStats is the instance's counters.
type REDStats struct {
	Enqueued   uint64
	EarlyDrops uint64
	TailDrops  uint64
	AvgQueue   float64
}

// InstanceName implements pcu.Instance.
func (i *REDInstance) InstanceName() string { return i.name }

// HandlePacket implements pcu.Instance: the RED admission test followed
// by FIFO enqueue.
func (i *REDInstance) HandlePacket(p *pkt.Packet) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	q := float64(i.fifo.Len())
	// EWMA of instantaneous queue length.
	i.avg = (1-i.wq)*i.avg + i.wq*q
	switch {
	case i.avg >= i.maxth:
		i.earlyDrops++
		i.count = 0
		p.MarkDrop("red: forced drop")
		return nil
	case i.avg >= i.minth:
		pb := i.maxp * (i.avg - i.minth) / (i.maxth - i.minth)
		pa := pb / (1 - float64(i.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		i.count++
		if i.rng.Float64() < pa {
			i.earlyDrops++
			i.count = 0
			p.MarkDrop("red: early drop")
			return nil
		}
	default:
		i.count = 0
	}
	if err := i.fifo.Enqueue(p); err != nil {
		i.tailDrops++
		p.MarkDrop("red: queue full")
		return nil
	}
	i.enq++
	return nil
}

// Drain implements ipcore.Drainer.
func (i *REDInstance) Drain() *pkt.Packet {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fifo.Dequeue()
}

// Backlog implements ipcore.Drainer.
func (i *REDInstance) Backlog() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fifo.Len()
}

// Snapshot returns the counters.
func (i *REDInstance) Snapshot() REDStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return REDStats{Enqueued: i.enq, EarlyDrops: i.earlyDrops, TailDrops: i.tailDrops, AvgQueue: i.avg}
}
