package plugins

import (
	"fmt"
	"sort"
	"sync"

	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// StatsPlugin is the statistics-gathering plugin for network management
// (§2: "it is important to be able to quickly and easily change the
// kinds of statistics being collected, and to do this without incurring
// significant overhead on the data path"). Instances count packets and
// bytes per flow (keyed by the six-tuple) and per protocol; the "report"
// message returns snapshots sorted by traffic volume.
type StatsPlugin struct {
	env   *Env
	namer instanceNamer
}

// NewStatsPlugin builds the plugin.
func NewStatsPlugin(env *Env) *StatsPlugin {
	return &StatsPlugin{env: env, namer: instanceNamer{prefix: "stats"}}
}

// PluginName implements pcu.Plugin.
func (s *StatsPlugin) PluginName() string { return "stats" }

// PluginCode implements pcu.Plugin.
func (s *StatsPlugin) PluginCode() pcu.Code { return pcu.MakeCode(pcu.TypeStats, 1) }

// Callback implements pcu.Plugin.
func (s *StatsPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		inst := &StatsInstance{name: s.namer.next(), flows: make(map[pkt.Key]*FlowCount), proto: make(map[uint8]*FlowCount)}
		msg.Reply = inst
		return nil
	case pcu.MsgFreeInstance:
		s.env.AIU.UnbindInstance(msg.Instance)
		return nil
	case pcu.MsgRegisterInstance:
		return register(s.env, pcu.TypeStats, msg, nil)
	case pcu.MsgDeregisterInstance:
		return deregister(s.env, pcu.TypeStats, msg)
	case pcu.MsgCustom:
		inst, ok := msg.Instance.(*StatsInstance)
		if !ok {
			return fmt.Errorf("plugins: %q needs an instance", msg.Verb)
		}
		switch msg.Verb {
		case "report":
			msg.Reply = inst.Report()
			return nil
		case "reset":
			inst.Reset()
			return nil
		}
		return fmt.Errorf("plugins: stats has no message %q", msg.Verb)
	default:
		return fmt.Errorf("plugins: unhandled message kind %v", msg.Kind)
	}
}

// FlowCount is one counter bucket.
type FlowCount struct {
	Packets uint64
	Bytes   uint64
}

// FlowReport is one flow's row in a report.
type FlowReport struct {
	Key pkt.Key
	FlowCount
}

// Report is the reply to the "report" message.
type Report struct {
	Total    FlowCount
	ByProto  map[uint8]FlowCount
	TopFlows []FlowReport
}

// StatsInstance accumulates counters on the data path.
type StatsInstance struct {
	name string

	mu    sync.Mutex
	total FlowCount
	flows map[pkt.Key]*FlowCount
	proto map[uint8]*FlowCount
}

// InstanceName implements pcu.Instance.
func (i *StatsInstance) InstanceName() string { return i.name }

// HandlePacket implements pcu.Instance.
func (i *StatsInstance) HandlePacket(p *pkt.Packet) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := uint64(len(p.Data))
	i.total.Packets++
	i.total.Bytes += n
	fc := i.flows[p.Key]
	if fc == nil {
		fc = &FlowCount{}
		i.flows[p.Key] = fc
	}
	fc.Packets++
	fc.Bytes += n
	pc := i.proto[p.Key.Proto]
	if pc == nil {
		pc = &FlowCount{}
		i.proto[p.Key.Proto] = pc
	}
	pc.Packets++
	pc.Bytes += n
	return nil
}

// Report snapshots the counters, flows sorted by bytes descending.
func (i *StatsInstance) Report() Report {
	i.mu.Lock()
	defer i.mu.Unlock()
	r := Report{Total: i.total, ByProto: make(map[uint8]FlowCount, len(i.proto))}
	for pr, c := range i.proto {
		r.ByProto[pr] = *c
	}
	for k, c := range i.flows {
		r.TopFlows = append(r.TopFlows, FlowReport{Key: k, FlowCount: *c})
	}
	sort.Slice(r.TopFlows, func(a, b int) bool { return r.TopFlows[a].Bytes > r.TopFlows[b].Bytes })
	return r
}

// Reset clears all counters.
func (i *StatsInstance) Reset() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.total = FlowCount{}
	i.flows = make(map[pkt.Key]*FlowCount)
	i.proto = make(map[uint8]*FlowCount)
}
