// Package plugins contains the concrete router plugins: the weighted DRR
// and H-FSC packet schedulers of §6, the "empty" plugin used by the
// Table 3 gate-overhead measurement, and the additional plugin types the
// paper envisions (§4): RED congestion control, statistics gathering for
// network management, firewall filtering, TCP backoff monitoring, IP
// option processing, and per-flow routing (L4 switching).
//
// Every plugin implements pcu.Plugin: it registers a callback with the
// PCU and answers the standardized message set (create-instance,
// free-instance, register-instance, deregister-instance) plus its own
// plugin-specific messages.
package plugins

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/telemetry"
)

// Env gives plugins access to the kernel components they glue into: the
// AIU's published registration functions, the router core for drainer
// registration, and a clock. It is the Go analog of the kernel symbols a
// loaded module links against.
type Env struct {
	Router *ipcore.Router
	AIU    *aiu.AIU
	Clock  func() time.Time
	// Tel is the router's telemetry registry (nil when telemetry is
	// off); plugin instances register their metric bundles against it
	// at create time.
	Tel *telemetry.Telemetry
}

func (e *Env) now() time.Time {
	if e.Clock != nil {
		return e.Clock()
	}
	return time.Now()
}

// Reservation is the filter-record hard state carried by scheduler
// bindings: a weight (DRR) or class name (H-FSC) assigned to the flows
// the filter matches.
type Reservation struct {
	Weight float64
	Class  string
}

// parseFilterArg extracts and parses the "filter" argument of a
// register/deregister message.
func parseFilterArg(msg *pcu.Message) (aiu.Filter, error) {
	spec, ok := msg.Args["filter"]
	if !ok {
		return aiu.Filter{}, fmt.Errorf("plugins: %s requires a filter argument", msg.Kind)
	}
	return aiu.ParseFilter(spec)
}

// register performs the common register-instance handling: bind the
// filter to the instance at the plugin's gate with the given private
// state.
func register(env *Env, gate pcu.Type, msg *pcu.Message, private any) error {
	f, err := parseFilterArg(msg)
	if err != nil {
		return err
	}
	rec, err := env.AIU.Bind(gate, f, msg.Instance, private)
	if err != nil {
		return err
	}
	msg.Reply = rec
	return nil
}

// deregister removes a binding named by its filter.
func deregister(env *Env, gate pcu.Type, msg *pcu.Message) error {
	f, err := parseFilterArg(msg)
	if err != nil {
		return err
	}
	rec := env.AIU.FindRecord(gate, f, msg.Instance)
	if rec == nil {
		return fmt.Errorf("plugins: no binding for %s at gate %s", f, gate)
	}
	return env.AIU.Unbind(rec)
}

func argFloat(msg *pcu.Message, key string, def float64) (float64, error) {
	s, ok := msg.Args[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("plugins: bad %s=%q: %w", key, s, err)
	}
	return v, nil
}

func argInt(msg *pcu.Message, key string, def int) (int, error) {
	s, ok := msg.Args[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("plugins: bad %s=%q: %w", key, s, err)
	}
	return v, nil
}

func argIf(msg *pcu.Message) (int32, error) {
	s, ok := msg.Args["iface"]
	if !ok {
		return 0, fmt.Errorf("plugins: create-instance requires iface=N")
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("plugins: bad iface=%q", s)
	}
	return int32(v), nil
}

// instanceNamer hands out instance names like "drr0", "drr1".
type instanceNamer struct {
	mu     sync.Mutex
	prefix string
	n      int
}

func (g *instanceNamer) next() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	name := fmt.Sprintf("%s%d", g.prefix, g.n)
	g.n++
	return name
}
