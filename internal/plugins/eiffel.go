package plugins

import (
	"fmt"
	"sync"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/sched"
)

// EiffelPlugin is the million-flow scheduling plugin: the FFS-indexed
// bucket-wheel scheduler of internal/sched's Eiffel behind the same
// plugin surface as DRR. Flows get their per-flow queue lazily through
// the scheduling gate's soft-state slot; weights come from the
// reservation installed with the flow's filter. Where DRR's per-flow
// FIFO preallocation caps the practical flow count, Eiffel's intrusive
// packet chaining keeps per-flow state to one small header, so the same
// plugin verbs scale to a million live flows.
type EiffelPlugin struct {
	env   *Env
	namer instanceNamer
}

// NewEiffelPlugin builds the plugin.
func NewEiffelPlugin(env *Env) *EiffelPlugin {
	return &EiffelPlugin{env: env, namer: instanceNamer{prefix: "eiffel"}}
}

// PluginName implements pcu.Plugin.
func (d *EiffelPlugin) PluginName() string { return "eiffel" }

// PluginCode implements pcu.Plugin.
func (d *EiffelPlugin) PluginCode() pcu.Code { return pcu.MakeCode(pcu.TypeSched, 4) }

// Callback implements pcu.Plugin.
//
// create-instance args: iface=N (required), quantum=BYTES, qlen=PKTS.
// register-instance args: filter=SPEC, weight=W (reserved flows).
// Custom messages: "stats" replies with a []FlowShare snapshot;
// "purge-idle" reclaims empty flow queues and replies with the count.
func (d *EiffelPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		ifIdx, err := argIf(msg)
		if err != nil {
			return err
		}
		quantum, err := argInt(msg, "quantum", 1500)
		if err != nil {
			return err
		}
		qlen, err := argInt(msg, "qlen", 128)
		if err != nil {
			return err
		}
		inst := &EiffelInstance{
			name: d.namer.next(), env: d.env, ifIdx: ifIdx,
			eif: sched.NewEiffel(quantum, qlen),
		}
		inst.eif.Tel = d.env.Tel.SchedMetrics("eiffel", inst.name)
		if slot, ok := d.env.AIU.Slot(pcu.TypeSched); ok {
			inst.slot = slot
		} else {
			return fmt.Errorf("plugins: AIU has no scheduling gate")
		}
		if d.env.Router != nil {
			d.env.Router.RegisterDrainer(ifIdx, inst)
		}
		msg.Reply = inst
		return nil
	case pcu.MsgFreeInstance:
		inst, ok := msg.Instance.(*EiffelInstance)
		if !ok {
			return fmt.Errorf("plugins: not an Eiffel instance")
		}
		if d.env.Router != nil {
			d.env.Router.UnregisterDrainer(inst.ifIdx, inst)
		}
		d.env.AIU.UnbindInstance(inst)
		return nil
	case pcu.MsgRegisterInstance:
		w, err := argFloat(msg, "weight", 1)
		if err != nil {
			return err
		}
		return register(d.env, pcu.TypeSched, msg, &Reservation{Weight: w})
	case pcu.MsgDeregisterInstance:
		return deregister(d.env, pcu.TypeSched, msg)
	case pcu.MsgCustom:
		switch msg.Verb {
		case "stats":
			inst, ok := msg.Instance.(*EiffelInstance)
			if !ok {
				return fmt.Errorf("plugins: stats needs an instance")
			}
			msg.Reply = inst.Shares()
			return nil
		case "purge-idle":
			inst, ok := msg.Instance.(*EiffelInstance)
			if !ok {
				return fmt.Errorf("plugins: purge-idle needs an instance")
			}
			msg.Reply = inst.PurgeIdle()
			return nil
		}
		return fmt.Errorf("plugins: eiffel has no message %q", msg.Verb)
	default:
		return fmt.Errorf("plugins: unhandled message kind %v", msg.Kind)
	}
}

// EiffelInstance is one interface's Eiffel scheduler.
type EiffelInstance struct {
	name  string
	env   *Env
	ifIdx int32
	slot  int

	mu  sync.Mutex
	eif *sched.Eiffel
}

// InstanceName implements pcu.Instance.
func (i *EiffelInstance) InstanceName() string { return i.name }

// IfIndex reports the interface this instance schedules.
func (i *EiffelInstance) IfIndex() int32 { return i.ifIdx }

// HandlePacket implements pcu.Instance: find (or create) the flow's
// queue via the flow record's soft-state slot and enqueue, exactly as
// the DRR plugin does — the two disciplines are interchangeable behind
// the scheduling gate.
//
//eisr:fastpath
func (i *EiffelInstance) HandlePacket(p *pkt.Packet) error {
	rec, _ := p.FIX.(*aiu.FlowRecord)
	if rec == nil {
		return errNoFlowRecord
	}
	b := rec.Bind(i.slot)
	q, _ := b.Private.(*sched.EiffelQueue)
	//eisr:allow(fastpath) per-instance queue mutex, bounded critical section, never held across a plugin or channel boundary
	i.mu.Lock()
	if q == nil {
		q = i.newFlowQueue(rec, b)
	}
	err := i.eif.EnqueueFlow(q, p)
	i.mu.Unlock()
	return err
}

// HandleBatch implements pcu.BatchHandler: the per-packet enqueue under
// one queue-mutex acquisition for the whole batch. Rejected packets are
// marked with the same preallocated reasons the scalar path returns as
// errors.
//
//eisr:fastpath
func (i *EiffelInstance) HandleBatch(ps []*pkt.Packet) {
	//eisr:allow(fastpath) per-instance queue mutex, bounded critical section, never held across a plugin or channel boundary
	i.mu.Lock()
	for _, p := range ps {
		rec, _ := p.FIX.(*aiu.FlowRecord)
		if rec == nil {
			p.MarkDrop(errNoFlowRecord.Error())
			continue
		}
		b := rec.Bind(i.slot)
		q, _ := b.Private.(*sched.EiffelQueue)
		if q == nil {
			q = i.newFlowQueue(rec, b)
		}
		if err := i.eif.EnqueueFlow(q, p); err != nil {
			p.MarkDrop(err.Error())
		}
	}
	i.mu.Unlock()
}

// newFlowQueue lazily creates the flow's queue on its first packet — the
// once-per-flow slow path. Called with i.mu held.
//
//eisr:slowpath
func (i *EiffelInstance) newFlowQueue(rec *aiu.FlowRecord, b *aiu.GateBind) *sched.EiffelQueue {
	weight := 1.0
	if b.Rec != nil {
		if res, ok := b.Rec.Private.(*Reservation); ok && res.Weight > 0 {
			weight = res.Weight
		}
	}
	q := i.eif.NewQueue(rec.Key.String(), weight)
	b.Private = q
	return q
}

// Drain implements ipcore.Drainer.
func (i *EiffelInstance) Drain() *pkt.Packet {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.eif.Dequeue()
}

// Backlog implements ipcore.Drainer.
func (i *EiffelInstance) Backlog() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.eif.Len()
}

// FlowEvicted implements aiu.FlowEvictListener: reclaim the per-flow
// queue when the AIU recycles the flow record.
func (i *EiffelInstance) FlowEvicted(key pkt.Key, slot int, b aiu.GateBind) {
	q, _ := b.Private.(*sched.EiffelQueue)
	if q == nil {
		return
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	i.eif.RemoveQueue(q)
}

// PurgeIdle reclaims every empty flow queue and reports how many.
func (i *EiffelInstance) PurgeIdle() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.eif.PurgeIdle()
}

// Shares snapshots per-flow service for the link-sharing demos.
func (i *EiffelInstance) Shares() []FlowShare {
	i.mu.Lock()
	defer i.mu.Unlock()
	var out []FlowShare
	for _, q := range i.eif.Queues() {
		out = append(out, FlowShare{Label: q.Label, Weight: q.Weight, Served: q.Served, Drops: q.Drops})
	}
	return out
}

// Scheduler exposes the underlying Eiffel for simulators.
func (i *EiffelInstance) Scheduler() *sched.Eiffel { return i.eif }
