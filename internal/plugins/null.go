package plugins

import (
	"fmt"

	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// NullPlugin is the "empty plugin" of the §7.3 measurement: its packet
// handler does nothing, so binding null instances to gates measures the
// pure overhead of the plugin framework — flow detection plus the
// indirect function calls — against the monolithic kernel.
type NullPlugin struct {
	env   *Env
	gate  pcu.Type
	namer instanceNamer
}

// NewNullPlugin builds a null plugin for the given gate type (an "empty"
// implementation can be registered at any gate).
func NewNullPlugin(env *Env, gate pcu.Type) *NullPlugin {
	return &NullPlugin{env: env, gate: gate, namer: instanceNamer{prefix: fmt.Sprintf("null-%s", gate)}}
}

// PluginName implements pcu.Plugin.
func (n *NullPlugin) PluginName() string { return fmt.Sprintf("null-%s", n.gate) }

// PluginCode implements pcu.Plugin; impl id 0xffff marks the null
// implementation of a type.
func (n *NullPlugin) PluginCode() pcu.Code { return pcu.MakeCode(n.gate, 0xffff) }

// Callback implements pcu.Plugin.
func (n *NullPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		msg.Reply = &NullInstance{name: n.namer.next()}
		return nil
	case pcu.MsgFreeInstance:
		n.env.AIU.UnbindInstance(msg.Instance)
		return nil
	case pcu.MsgRegisterInstance:
		return register(n.env, n.gate, msg, nil)
	case pcu.MsgDeregisterInstance:
		return deregister(n.env, n.gate, msg)
	default:
		return fmt.Errorf("plugins: null plugin has no message %q", msg.Verb)
	}
}

// NullInstance does nothing, as fast as possible.
type NullInstance struct {
	name string
	// Calls counts handler invocations so tests can assert dispatch.
	Calls uint64
}

// InstanceName implements pcu.Instance.
func (i *NullInstance) InstanceName() string { return i.name }

// HandlePacket implements pcu.Instance.
func (i *NullInstance) HandlePacket(p *pkt.Packet) error {
	i.Calls++
	return nil
}
