package plugins

import (
	"fmt"
	"strconv"
	"sync"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

// RoutePlugin realizes the paper's §8 future work: "the integration of
// routing into the packet classifier... By unifying routing and packet
// classification, we get QoS-based routing / Level 4 switching for
// free." Filters — which may inspect any of the six tuple fields, not
// just the destination — bind flows to next hops; the routing gate sets
// the forwarding decision per flow, with the conventional
// destination-prefix table as fallback for unbound flows.
type RoutePlugin struct {
	env   *Env
	namer instanceNamer
}

// NewRoutePlugin builds the plugin.
func NewRoutePlugin(env *Env) *RoutePlugin {
	return &RoutePlugin{env: env, namer: instanceNamer{prefix: "l4route"}}
}

// PluginName implements pcu.Plugin.
func (r *RoutePlugin) PluginName() string { return "l4route" }

// PluginCode implements pcu.Plugin.
func (r *RoutePlugin) PluginCode() pcu.Code { return pcu.MakeCode(pcu.TypeRouting, 1) }

// Callback implements pcu.Plugin.
//
// register-instance args: filter=SPEC, dev=N (required), via=ADDR.
func (r *RoutePlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		inst := &RouteInstance{name: r.namer.next()}
		inst.slot, _ = r.env.AIU.Slot(pcu.TypeRouting)
		msg.Reply = inst
		return nil
	case pcu.MsgFreeInstance:
		r.env.AIU.UnbindInstance(msg.Instance)
		return nil
	case pcu.MsgRegisterInstance:
		devStr, ok := msg.Args["dev"]
		if !ok {
			return fmt.Errorf("plugins: l4route register-instance requires dev=N")
		}
		dev, err := strconv.Atoi(devStr)
		if err != nil || dev < 0 {
			return fmt.Errorf("plugins: bad dev=%q", devStr)
		}
		nh := routing.NextHop{IfIndex: int32(dev)}
		if via, ok := msg.Args["via"]; ok {
			gw, err := pkt.ParseAddr(via)
			if err != nil {
				return fmt.Errorf("plugins: bad via=%q: %w", via, err)
			}
			nh.Gateway = gw
		}
		return register(r.env, pcu.TypeRouting, msg, nh)
	case pcu.MsgDeregisterInstance:
		return deregister(r.env, pcu.TypeRouting, msg)
	case pcu.MsgCustom:
		if msg.Verb == "stats" {
			inst, ok := msg.Instance.(*RouteInstance)
			if !ok {
				return fmt.Errorf("plugins: stats needs an instance")
			}
			msg.Reply = inst.Snapshot()
			return nil
		}
		return fmt.Errorf("plugins: l4route has no message %q", msg.Verb)
	default:
		return fmt.Errorf("plugins: unhandled message kind %v", msg.Kind)
	}
}

// RouteInstance applies per-flow forwarding decisions.
type RouteInstance struct {
	name string
	slot int

	mu sync.Mutex
	st RouteStats
}

// RouteStats counts routing-gate decisions.
type RouteStats struct {
	Switched uint64 // packets routed by a flow filter
}

// InstanceName implements pcu.Instance.
func (i *RouteInstance) InstanceName() string { return i.name }

// HandlePacket implements pcu.Instance: set the packet's forwarding
// decision from the matched filter's next hop.
func (i *RouteInstance) HandlePacket(p *pkt.Packet) error {
	rec, _ := p.FIX.(*aiu.FlowRecord)
	if rec == nil {
		return nil
	}
	b := rec.Bind(i.slot)
	if b.Rec == nil {
		return nil
	}
	nh, ok := b.Rec.Private.(routing.NextHop)
	if !ok {
		return nil
	}
	p.OutIf = nh.IfIndex
	p.NextHop = nh.Gateway
	i.mu.Lock()
	i.st.Switched++
	i.mu.Unlock()
	return nil
}

// Snapshot returns the counters.
func (i *RouteInstance) Snapshot() RouteStats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.st
}
