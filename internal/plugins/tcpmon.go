package plugins

import (
	"fmt"
	"sync"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// TCPMonPlugin is "a plugin monitoring TCP congestion backoff behaviour"
// (§4). It keeps per-flow soft state in the flow record — highest
// sequence seen, retransmission count, duplicate-ACK runs — and flags
// flows that do not appear to back off (sequence keeps advancing at full
// tilt through loss episodes).
type TCPMonPlugin struct {
	env   *Env
	namer instanceNamer
}

// NewTCPMonPlugin builds the plugin.
func NewTCPMonPlugin(env *Env) *TCPMonPlugin {
	return &TCPMonPlugin{env: env, namer: instanceNamer{prefix: "tcpmon"}}
}

// PluginName implements pcu.Plugin.
func (t *TCPMonPlugin) PluginName() string { return "tcpmon" }

// PluginCode implements pcu.Plugin.
func (t *TCPMonPlugin) PluginCode() pcu.Code { return pcu.MakeCode(pcu.TypeMonitor, 1) }

// Callback implements pcu.Plugin.
func (t *TCPMonPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		inst := &TCPMonInstance{name: t.namer.next(), flows: make(map[pkt.Key]*TCPFlowState)}
		inst.slot, _ = t.env.AIU.Slot(pcu.TypeMonitor)
		msg.Reply = inst
		return nil
	case pcu.MsgFreeInstance:
		t.env.AIU.UnbindInstance(msg.Instance)
		return nil
	case pcu.MsgRegisterInstance:
		return register(t.env, pcu.TypeMonitor, msg, nil)
	case pcu.MsgDeregisterInstance:
		return deregister(t.env, pcu.TypeMonitor, msg)
	case pcu.MsgCustom:
		inst, ok := msg.Instance.(*TCPMonInstance)
		if !ok {
			return fmt.Errorf("plugins: %q needs an instance", msg.Verb)
		}
		if msg.Verb == "report" {
			msg.Reply = inst.Report()
			return nil
		}
		return fmt.Errorf("plugins: tcpmon has no message %q", msg.Verb)
	default:
		return fmt.Errorf("plugins: unhandled message kind %v", msg.Kind)
	}
}

// TCPFlowState is the monitor's per-flow soft state.
type TCPFlowState struct {
	HighSeq uint32
	Packets uint64
	Retrans uint64
	Syns    uint64
	Fins    uint64
	LastAck uint32
	DupAcks uint64
}

// TCPMonInstance watches TCP flows.
type TCPMonInstance struct {
	name string
	slot int

	mu    sync.Mutex
	flows map[pkt.Key]*TCPFlowState
}

// InstanceName implements pcu.Instance.
func (i *TCPMonInstance) InstanceName() string { return i.name }

// HandlePacket implements pcu.Instance.
func (i *TCPMonInstance) HandlePacket(p *pkt.Packet) error {
	if p.Key.Proto != pkt.ProtoTCP {
		return nil
	}
	var l4 []byte
	switch p.Version() {
	case 4:
		h, err := pkt.ParseIPv4(p.Data)
		if err != nil {
			return err
		}
		l4 = p.Data[h.HeaderLen():]
	case 6:
		l4 = p.Data[pkt.IPv6HeaderLen:]
	default:
		return nil
	}
	th, err := pkt.ParseTCP(l4)
	if err != nil {
		return err
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	st := i.flows[p.Key]
	if st == nil {
		st = &TCPFlowState{}
		i.flows[p.Key] = st
		// Mirror the state into the flow record's soft-state slot so a
		// cache hit gives O(1) access on the data path.
		if rec, _ := p.FIX.(*aiu.FlowRecord); rec != nil {
			rec.Bind(i.slot).Private = st
		}
	}
	st.Packets++
	if th.Flags&pkt.TCPSyn != 0 {
		st.Syns++
	}
	if th.Flags&pkt.TCPFin != 0 {
		st.Fins++
	}
	if th.Flags&pkt.TCPAck != 0 {
		if th.Ack == st.LastAck {
			st.DupAcks++
		}
		st.LastAck = th.Ack
	}
	if st.Packets > 1 && th.Seq != 0 && seqLEQ(th.Seq, st.HighSeq) {
		st.Retrans++
	}
	if seqGT(th.Seq, st.HighSeq) {
		st.HighSeq = th.Seq
	}
	return nil
}

// seqGT compares TCP sequence numbers mod 2^32.
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

// TCPFlowReport pairs a flow with its state.
type TCPFlowReport struct {
	Key pkt.Key
	TCPFlowState
}

// Report snapshots all tracked flows.
func (i *TCPMonInstance) Report() []TCPFlowReport {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]TCPFlowReport, 0, len(i.flows))
	for k, st := range i.flows {
		out = append(out, TCPFlowReport{Key: k, TCPFlowState: *st})
	}
	return out
}
