package plugins

import (
	"testing"

	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// TestCallbackErrorPaths drives every plugin's callback through its
// error and edge branches: missing arguments, bad values, unknown verbs,
// wrong instance types, free/deregister flows.
func TestCallbackErrorPaths(t *testing.T) {
	rg := newRig(t, pcu.TypeOptions, pcu.TypeSecurity, pcu.TypeFirewall,
		pcu.TypeStats, pcu.TypeMonitor, pcu.TypeRouting, pcu.TypeSched)
	for _, load := range []pcu.Plugin{
		NewDRRPlugin(rg.env), NewHFSCPlugin(rg.env), NewREDPlugin(rg.env),
		NewFirewallPlugin(rg.env), NewStatsPlugin(rg.env), NewTCPMonPlugin(rg.env),
		NewRoutePlugin(rg.env), NewOptionsPlugin(rg.env), NewNullPlugin(rg.env, pcu.TypeOptions),
	} {
		if err := rg.reg.Load(load); err != nil {
			t.Fatal(err)
		}
	}
	send := func(plugin string, msg *pcu.Message) error { return rg.reg.Send(plugin, msg) }

	// create-instance argument validation.
	for _, tc := range []struct {
		plugin string
		args   map[string]string
	}{
		{"drr", nil},                             // missing iface
		{"drr", map[string]string{"iface": "x"}}, // bad iface
		{"drr", map[string]string{"iface": "1", "quantum": "x"}},
		{"hfsc", map[string]string{"iface": "1"}}, // missing rate
		{"hfsc", map[string]string{"iface": "1", "rate": "x"}},
		{"red", map[string]string{"iface": "1", "minth": "9", "maxth": "5"}},
		{"red", map[string]string{"iface": "1", "maxp": "x"}},
		{"firewall", map[string]string{"default": "sideways"}},
	} {
		if err := send(tc.plugin, &pcu.Message{Kind: pcu.MsgCreateInstance, Args: tc.args}); err == nil {
			t.Errorf("%s create with %v accepted", tc.plugin, tc.args)
		}
	}

	// register-instance validation + unknown verbs, per plugin.
	mkInst := func(plugin string, args map[string]string) pcu.Instance {
		msg := &pcu.Message{Kind: pcu.MsgCreateInstance, Args: args}
		if err := send(plugin, msg); err != nil {
			t.Fatalf("%s create: %v", plugin, err)
		}
		return msg.Reply.(pcu.Instance)
	}
	insts := map[string]pcu.Instance{
		"drr":      mkInst("drr", map[string]string{"iface": "1"}),
		"hfsc":     mkInst("hfsc", map[string]string{"iface": "1", "rate": "1000000"}),
		"red":      mkInst("red", map[string]string{"iface": "1"}),
		"firewall": mkInst("firewall", nil),
		"stats":    mkInst("stats", nil),
		"tcpmon":   mkInst("tcpmon", nil),
		"l4route":  mkInst("l4route", nil),
		"options":  mkInst("options", map[string]string{"strict": "1"}),
	}
	for plugin, inst := range insts {
		// register without filter fails.
		if err := send(plugin, &pcu.Message{Kind: pcu.MsgRegisterInstance, Instance: inst}); err == nil {
			t.Errorf("%s register without filter accepted", plugin)
		}
		// register with a malformed filter fails.
		if err := send(plugin, &pcu.Message{
			Kind: pcu.MsgRegisterInstance, Instance: inst,
			Args: map[string]string{"filter": "garbage"},
		}); err == nil {
			t.Errorf("%s register with bad filter accepted", plugin)
		}
		// unknown custom verb fails.
		if err := send(plugin, &pcu.Message{Kind: pcu.MsgCustom, Verb: "frobnicate", Instance: inst}); err == nil {
			t.Errorf("%s frobnicate accepted", plugin)
		}
		// deregister of a missing binding fails.
		if err := send(plugin, &pcu.Message{
			Kind: pcu.MsgDeregisterInstance, Instance: inst,
			Args: map[string]string{"filter": "9.9.9.9, *, *, *, *, *"},
		}); err == nil {
			t.Errorf("%s deregister of missing binding accepted", plugin)
		}
	}

	// Plugin-specific register validation.
	if err := send("l4route", &pcu.Message{
		Kind: pcu.MsgRegisterInstance, Instance: insts["l4route"],
		Args: map[string]string{"filter": "*, *, *, *, *, *"},
	}); err == nil {
		t.Error("l4route register without dev accepted")
	}
	if err := send("l4route", &pcu.Message{
		Kind: pcu.MsgRegisterInstance, Instance: insts["l4route"],
		Args: map[string]string{"filter": "*, *, *, *, *, *", "dev": "1", "via": "zzz"},
	}); err == nil {
		t.Error("l4route bad via accepted")
	}
	if err := send("firewall", &pcu.Message{
		Kind: pcu.MsgRegisterInstance, Instance: insts["firewall"],
		Args: map[string]string{"filter": "*, *, *, *, *, *", "action": "sideways"},
	}); err == nil {
		t.Error("firewall bad action accepted")
	}
	// hfsc add-class validation.
	for _, args := range []map[string]string{
		nil,                              // missing name
		{"name": "default"},              // duplicate
		{"name": "x", "parent": "ghost"}, // unknown parent
		{"name": "y", "rt": "a,b,c"},     // bad curve
	} {
		if err := send("hfsc", &pcu.Message{Kind: pcu.MsgCustom, Verb: "add-class", Instance: insts["hfsc"], Args: args}); err == nil {
			t.Errorf("hfsc add-class with %v accepted", args)
		}
	}
	// hfsc register to default class works; stats verbs respond.
	if err := send("hfsc", &pcu.Message{
		Kind: pcu.MsgRegisterInstance, Instance: insts["hfsc"],
		Args: map[string]string{"filter": "*, *, *, *, *, *"},
	}); err != nil {
		t.Error(err)
	}
	for _, tc := range []struct{ plugin, verb string }{
		{"drr", "stats"}, {"hfsc", "stats"}, {"red", "stats"},
		{"firewall", "stats"}, {"stats", "report"}, {"stats", "reset"},
		{"tcpmon", "report"}, {"l4route", "stats"}, {"options", "stats"},
	} {
		if err := send(tc.plugin, &pcu.Message{Kind: pcu.MsgCustom, Verb: tc.verb, Instance: insts[tc.plugin]}); err != nil {
			t.Errorf("%s %s: %v", tc.plugin, tc.verb, err)
		}
	}
	// Custom verbs that need an instance reject nil.
	for _, tc := range []struct{ plugin, verb string }{
		{"drr", "stats"}, {"hfsc", "add-class"}, {"stats", "report"}, {"tcpmon", "report"},
	} {
		if err := send(tc.plugin, &pcu.Message{Kind: pcu.MsgCustom, Verb: tc.verb}); err == nil {
			t.Errorf("%s %s without instance accepted", tc.plugin, tc.verb)
		}
	}
	// free-instance with a mismatched type fails for typed plugins.
	wrong := insts["stats"]
	for _, plugin := range []string{"drr", "hfsc", "red"} {
		if err := send(plugin, &pcu.Message{Kind: pcu.MsgFreeInstance, Instance: wrong}); err == nil {
			t.Errorf("%s freed a foreign instance", plugin)
		}
	}
	// Accessors on instances.
	if insts["drr"].(*DRRInstance).IfIndex() != 1 {
		t.Error("DRR IfIndex wrong")
	}
	if insts["hfsc"].(*HFSCInstance).Scheduler() == nil {
		t.Error("HFSC Scheduler nil")
	}
	if insts["red"].(*REDInstance).Backlog() != 0 {
		t.Error("RED backlog nonzero")
	}
	for name, inst := range insts {
		if inst.InstanceName() == "" {
			t.Errorf("%s instance has empty name", name)
		}
	}
}

// TestOptionsStrictDropsUnknown covers strict-mode and IPv4 option
// parsing branches.
func TestOptionsStrictDropsUnknown(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewOptionsPlugin(rg.env))
	inst := rg.create(t, "options", map[string]string{"strict": "1"}).(*OptionsInstance)

	// IPv4 datagram with a router-alert option.
	h := pkt.IPv4Header{
		TotalLen: 24 + 8, TTL: 4, Protocol: pkt.ProtoUDP,
		Src: pkt.MustParseAddr("1.1.1.1"), Dst: pkt.MustParseAddr("2.2.2.2"),
		Options: []byte{0x94, 0x04, 0, 0},
	}
	buf := make([]byte, 32)
	if _, err := h.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	p := &pkt.Packet{Data: buf}
	if err := inst.HandlePacket(p); err != nil {
		t.Fatal(err)
	}
	if st := inst.Snapshot(); st.RouterAlerts != 1 {
		t.Errorf("alerts = %+v", st)
	}
	// Unknown IPv4 option in strict mode: dropped.
	h.Options = []byte{0x99, 0x04, 0, 0}
	if _, err := h.Marshal(buf); err != nil {
		t.Fatal(err)
	}
	q := &pkt.Packet{Data: buf}
	inst.HandlePacket(q)
	if !q.Drop {
		t.Error("strict mode kept unknown option")
	}
	// Unknown IPv6 option with action bits: dropped in strict mode.
	data6, _ := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("2001:db8::1"), Dst: pkt.MustParseAddr("2001:db8::2"),
		SrcPort: 1, DstPort: 2, Payload: []byte("z"),
		HopByHop: []pkt.HopByHopOption{{Type: 0xc2, Data: []byte{1, 2}}},
	})
	r, _ := pkt.NewPacket(data6, 0)
	inst.HandlePacket(r)
	if !r.Drop {
		t.Error("strict mode kept unknown v6 option")
	}
}

// TestRouteInstanceWithoutBinding covers the pass-through branches.
func TestRouteInstanceWithoutBinding(t *testing.T) {
	rg := newRig(t)
	rg.reg.Load(NewRoutePlugin(rg.env))
	inst := rg.create(t, "l4route", nil).(*RouteInstance)
	// No FIX at all.
	p := &pkt.Packet{OutIf: -1}
	if err := inst.HandlePacket(p); err != nil || p.OutIf != -1 {
		t.Error("packet without flow record modified")
	}
	// Binding present with via.
	rg.bind(t, "l4route", inst, map[string]string{
		"filter": "*, *, *, *, *, *", "dev": "1", "via": "192.0.2.9",
	})
	q := udp(t, "10.0.0.1", 1, 10)
	rg.r.Forward(q)
	if q.NextHop != pkt.MustParseAddr("192.0.2.9") {
		t.Errorf("via not applied: %s", q.NextHop)
	}
}
