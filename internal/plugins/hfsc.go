package plugins

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/sched"
)

// HFSCPlugin wraps the Hierarchical Fair Service Curve scheduler (§6) as
// a scheduling plugin. Instances are per interface; the class hierarchy
// is configured through plugin-specific messages and filters bind flows
// to leaf classes.
type HFSCPlugin struct {
	env   *Env
	namer instanceNamer
}

// NewHFSCPlugin builds the plugin.
func NewHFSCPlugin(env *Env) *HFSCPlugin {
	return &HFSCPlugin{env: env, namer: instanceNamer{prefix: "hfsc"}}
}

// PluginName implements pcu.Plugin.
func (h *HFSCPlugin) PluginName() string { return "hfsc" }

// PluginCode implements pcu.Plugin.
func (h *HFSCPlugin) PluginCode() pcu.Code { return pcu.MakeCode(pcu.TypeSched, 2) }

// ParseCurve parses "m1,d,m2" or a single rate "m" (bytes/second,
// seconds).
func ParseCurve(s string) (sched.Curve, error) {
	parts := strings.Split(s, ",")
	switch len(parts) {
	case 1:
		m, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return sched.Curve{}, fmt.Errorf("plugins: bad curve %q", s)
		}
		return sched.LinearCurve(m), nil
	case 3:
		m1, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		d, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		m2, err3 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return sched.Curve{}, fmt.Errorf("plugins: bad curve %q", s)
		}
		return sched.Curve{M1: m1, D: d, M2: m2}, nil
	default:
		return sched.Curve{}, fmt.Errorf("plugins: curve must be 'rate' or 'm1,d,m2': %q", s)
	}
}

// Callback implements pcu.Plugin.
//
// create-instance args: iface=N (required), rate=BYTES/S (link rate,
// required).
// Custom "add-class" args: name=..., parent=... (optional), rt=, ls=,
// ul= (curves), drr=1 (use a DRR leaf queue — the HSF extension).
// register-instance args: filter=SPEC, class=NAME.
func (h *HFSCPlugin) Callback(msg *pcu.Message) error {
	switch msg.Kind {
	case pcu.MsgCreateInstance:
		ifIdx, err := argIf(msg)
		if err != nil {
			return err
		}
		rate, err := argFloat(msg, "rate", 0)
		if err != nil {
			return err
		}
		if rate <= 0 {
			return fmt.Errorf("plugins: hfsc create-instance requires rate=BYTES/S")
		}
		inst := &HFSCInstance{
			name: h.namer.next(), env: h.env, ifIdx: ifIdx,
			hfsc: sched.NewHFSC(rate), classes: make(map[string]*sched.Class),
			epoch: h.env.now(),
		}
		inst.hfsc.Tel = h.env.Tel.SchedMetrics("hfsc", inst.name)
		if slot, ok := h.env.AIU.Slot(pcu.TypeSched); ok {
			inst.slot = slot
		} else {
			return fmt.Errorf("plugins: AIU has no scheduling gate")
		}
		// A default best-effort class catches unbound flows.
		ls := sched.LinearCurve(rate / 10)
		def, err := inst.hfsc.AddClass("default", nil, nil, &ls, nil, nil)
		if err != nil {
			return err
		}
		inst.classes["default"] = def
		inst.def = def
		if h.env.Router != nil {
			h.env.Router.RegisterDrainer(ifIdx, inst)
		}
		msg.Reply = inst
		return nil
	case pcu.MsgFreeInstance:
		inst, ok := msg.Instance.(*HFSCInstance)
		if !ok {
			return fmt.Errorf("plugins: not an HFSC instance")
		}
		if h.env.Router != nil {
			h.env.Router.UnregisterDrainer(inst.ifIdx, inst)
		}
		h.env.AIU.UnbindInstance(inst)
		return nil
	case pcu.MsgRegisterInstance:
		inst, ok := msg.Instance.(*HFSCInstance)
		if !ok {
			return fmt.Errorf("plugins: not an HFSC instance")
		}
		class := msg.Arg("class", "default")
		if inst.Class(class) == nil {
			return fmt.Errorf("plugins: hfsc has no class %q", class)
		}
		return register(h.env, pcu.TypeSched, msg, &Reservation{Class: class})
	case pcu.MsgDeregisterInstance:
		return deregister(h.env, pcu.TypeSched, msg)
	case pcu.MsgCustom:
		inst, ok := msg.Instance.(*HFSCInstance)
		if !ok {
			return fmt.Errorf("plugins: %q needs an instance", msg.Verb)
		}
		switch msg.Verb {
		case "add-class":
			return inst.addClass(msg)
		case "stats":
			msg.Reply = inst.ClassStats()
			return nil
		}
		return fmt.Errorf("plugins: hfsc has no message %q", msg.Verb)
	default:
		return fmt.Errorf("plugins: unhandled message kind %v", msg.Kind)
	}
}

// HFSCInstance is one interface's H-FSC hierarchy.
type HFSCInstance struct {
	name  string
	env   *Env
	ifIdx int32
	slot  int
	epoch time.Time

	mu      sync.Mutex
	hfsc    *sched.HFSC
	classes map[string]*sched.Class
	def     *sched.Class
}

// InstanceName implements pcu.Instance.
func (i *HFSCInstance) InstanceName() string { return i.name }

func (i *HFSCInstance) nowSec() float64 { return i.env.now().Sub(i.epoch).Seconds() }

func (i *HFSCInstance) addClass(msg *pcu.Message) error {
	name, ok := msg.Args["name"]
	if !ok {
		return fmt.Errorf("plugins: add-class requires name=")
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if _, dup := i.classes[name]; dup {
		return fmt.Errorf("plugins: class %q exists", name)
	}
	var parent *sched.Class
	if pn, ok := msg.Args["parent"]; ok {
		parent = i.classes[pn]
		if parent == nil {
			return fmt.Errorf("plugins: no parent class %q", pn)
		}
	}
	var rt, ls, ul *sched.Curve
	for key, dst := range map[string]**sched.Curve{"rt": &rt, "ls": &ls, "ul": &ul} {
		if s, ok := msg.Args[key]; ok {
			c, err := ParseCurve(s)
			if err != nil {
				return err
			}
			*dst = &c
		}
	}
	var queue sched.LeafQueue
	if msg.Arg("drr", "") != "" {
		leaf := sched.NewDRRLeaf(1500)
		leaf.PerFlow = true // HSF: fair queuing among the class's flows
		queue = leaf
	}
	cl, err := i.hfsc.AddClass(name, parent, rt, ls, ul, queue)
	if err != nil {
		return err
	}
	i.classes[name] = cl
	msg.Reply = cl
	return nil
}

// Class finds a class by name.
func (i *HFSCInstance) Class(name string) *sched.Class {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.classes[name]
}

// HandlePacket implements pcu.Instance: map the flow to its class via
// the filter reservation, enqueue at the current time.
func (i *HFSCInstance) HandlePacket(p *pkt.Packet) error {
	rec, _ := p.FIX.(*aiu.FlowRecord)
	if rec == nil {
		return fmt.Errorf("hfsc: packet carries no flow record")
	}
	b := rec.Bind(i.slot)
	i.mu.Lock()
	defer i.mu.Unlock()
	cl, _ := b.Private.(*sched.Class)
	if cl == nil {
		cl = i.def
		if b.Rec != nil {
			if res, ok := b.Rec.Private.(*Reservation); ok && res.Class != "" {
				if c := i.classes[res.Class]; c != nil {
					cl = c
				}
			}
		}
		b.Private = cl
	}
	return i.hfsc.EnqueueClass(cl, p, i.nowSec())
}

// Drain implements ipcore.Drainer.
func (i *HFSCInstance) Drain() *pkt.Packet {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hfsc.DequeueAt(i.nowSec())
}

// Backlog implements ipcore.Drainer.
func (i *HFSCInstance) Backlog() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hfsc.Len()
}

// Scheduler exposes the underlying H-FSC for simulators.
func (i *HFSCInstance) Scheduler() *sched.HFSC { return i.hfsc }

// ClassStat is one class's service snapshot.
type ClassStat struct {
	Name   string
	Served uint64
	Drops  uint64
}

// ClassStats snapshots per-class service.
func (i *HFSCInstance) ClassStats() []ClassStat {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make([]ClassStat, 0, len(i.classes))
	for name, cl := range i.classes {
		out = append(out, ClassStat{Name: name, Served: cl.Served, Drops: cl.Drops})
	}
	return out
}
