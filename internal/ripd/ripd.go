// Package ripd implements the route daemon of §3.1 — the analog of
// routed, one of the user-space daemons "linked against the Router
// Plugin Library to perform their respective tasks". It runs a small
// distance-vector protocol (RIP-shaped: periodic advertisements over UDP
// port 520, metric 16 = infinity, split horizon, route expiry) across
// the simulated links, so a topology of routers converges on working
// forwarding tables without static configuration.
//
// The wire format is JSON inside UDP datagrams addressed to the limited
// broadcast, which the IP core delivers locally rather than forwarding.
package ripd

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

// Protocol constants.
const (
	Port     = 520 // the historical routed/RIP port
	Infinity = 16
)

// Update is one advertisement.
type Update struct {
	From   string       `json:"from"` // advertising interface address
	Routes []RouteEntry `json:"routes"`
}

// RouteEntry advertises one prefix.
type RouteEntry struct {
	Prefix string `json:"prefix"`
	Metric int    `json:"metric"`
}

// Table is the forwarding-table surface the daemon programs: satisfied
// by *routing.Table directly, and by the route feed's Sink when RIP
// churn is accounted through the feed daemon.
type Table interface {
	Add(p pkt.Prefix, nh routing.NextHop)
	ApplyBatch(adds []routing.Route, dels []pkt.Prefix) (nadds, ndels int)
}

// Daemon is the route daemon for one router.
type Daemon struct {
	core  *ipcore.Router
	table Table
	clock func() time.Time

	mu sync.Mutex
	// static routes this daemon originates (metric 1), typically the
	// router's directly connected networks.
	origin map[pkt.Prefix]bool
	// learned routes with their provenance and deadline.
	learned map[pkt.Prefix]*learnedRoute

	advertiseEvery time.Duration
	expireAfter    time.Duration

	// Sent/Received count protocol messages for tests and monitoring.
	Sent     int
	Received int
}

type learnedRoute struct {
	nh       routing.NextHop
	metric   int
	viaIf    int32
	deadline time.Time
}

// New builds a daemon over a router core and its forwarding table.
func New(core *ipcore.Router, table Table) *Daemon {
	return &Daemon{
		core: core, table: table, clock: time.Now,
		origin:         make(map[pkt.Prefix]bool),
		learned:        make(map[pkt.Prefix]*learnedRoute),
		advertiseEvery: 10 * time.Second,
		expireAfter:    35 * time.Second,
	}
}

// SetClock overrides the time source (tests).
func (d *Daemon) SetClock(f func() time.Time) { d.clock = f }

// SetTimers adjusts the advertisement interval and route lifetime.
func (d *Daemon) SetTimers(advertise, expire time.Duration) {
	d.advertiseEvery = advertise
	d.expireAfter = expire
}

// Originate announces a directly connected prefix (installed locally at
// metric 0 semantics; advertised at metric 1).
func (d *Daemon) Originate(prefix string, ifIdx int32) error {
	p, err := pkt.ParsePrefix(prefix)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.origin[pkt.PrefixFrom(p.Addr, p.Len)] = true
	d.mu.Unlock()
	d.table.Add(p, routing.NextHop{IfIndex: ifIdx})
	return nil
}

// HandlePacket ingests one received protocol packet (wired to the
// router's local handler for UDP port 520).
func (d *Daemon) HandlePacket(p *pkt.Packet) {
	var u Update
	payload, err := udpPayload(p.Data)
	if err != nil {
		return
	}
	if err := json.Unmarshal(payload, &u); err != nil {
		return
	}
	from, err := pkt.ParseAddr(u.From)
	if err != nil {
		return
	}
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Received++
	// One advertisement becomes one forwarding-table batch: a single
	// snapshot publication no matter how many routes it carries.
	var adds []routing.Route
	var dels []pkt.Prefix
	for _, re := range u.Routes {
		prefix, err := pkt.ParsePrefix(re.Prefix)
		if err != nil {
			continue
		}
		prefix = pkt.PrefixFrom(prefix.Addr, prefix.Len)
		if d.origin[prefix] {
			continue // we own it
		}
		metric := re.Metric + 1
		if metric >= Infinity {
			// Poisoned or too far: withdraw if we learned it this way.
			if lr, ok := d.learned[prefix]; ok && lr.nh.Gateway == from {
				delete(d.learned, prefix)
				dels = append(dels, prefix)
			}
			continue
		}
		lr, ok := d.learned[prefix]
		if !ok || metric < lr.metric || lr.nh.Gateway == from {
			nh := routing.NextHop{IfIndex: p.InIf, Gateway: from, Metric: metric}
			d.learned[prefix] = &learnedRoute{nh: nh, metric: metric, viaIf: p.InIf, deadline: now.Add(d.expireAfter)}
			adds = append(adds, routing.Route{Prefix: prefix, NextHop: nh})
		} else if lr.nh.Gateway == from {
			lr.deadline = now.Add(d.expireAfter)
		}
	}
	if len(adds) > 0 || len(dels) > 0 {
		d.table.ApplyBatch(adds, dels)
	}
}

// Advertise sends the daemon's view out every addressed interface, with
// split horizon (routes are not advertised back out the interface they
// were learned from).
func (d *Daemon) Advertise() {
	d.mu.Lock()
	type entry struct {
		prefix pkt.Prefix
		metric int
		viaIf  int32 // -1 for originated
	}
	var view []entry
	for p := range d.origin {
		view = append(view, entry{prefix: p, metric: 1, viaIf: -1})
	}
	for p, lr := range d.learned {
		view = append(view, entry{prefix: p, metric: lr.metric, viaIf: lr.viaIf})
	}
	d.mu.Unlock()

	for _, ifc := range d.core.Interfaces() {
		var zero pkt.Addr
		if ifc.Addr == zero || ifc.Addr.IsV6() {
			continue
		}
		u := Update{From: ifc.Addr.String()}
		for _, e := range view {
			if e.viaIf == ifc.Index {
				continue // split horizon
			}
			u.Routes = append(u.Routes, RouteEntry{Prefix: e.prefix.String(), Metric: e.metric})
		}
		if len(u.Routes) == 0 {
			continue
		}
		if err := d.sendUpdate(ifc, &u); err == nil {
			d.mu.Lock()
			d.Sent++
			d.mu.Unlock()
		}
	}
}

func (d *Daemon) sendUpdate(ifc *netdev.Interface, u *Update) error {
	payload, err := json.Marshal(u)
	if err != nil {
		return err
	}
	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: ifc.Addr, Dst: pkt.AddrV4(0xffffffff),
		SrcPort: Port, DstPort: Port, TTL: 1, Payload: payload,
	})
	if err != nil {
		return err
	}
	p, err := pkt.NewPacket(data, -1)
	if err != nil {
		return err
	}
	p.OutIf = ifc.Index
	return ifc.Transmit(p)
}

// Expire withdraws learned routes whose lifetime lapsed; it returns the
// number withdrawn.
func (d *Daemon) Expire() int {
	now := d.clock()
	d.mu.Lock()
	defer d.mu.Unlock()
	var dels []pkt.Prefix
	for p, lr := range d.learned {
		if lr.deadline.Before(now) {
			delete(d.learned, p)
			dels = append(dels, p)
		}
	}
	if len(dels) > 0 {
		d.table.ApplyBatch(nil, dels)
	}
	return len(dels)
}

// Tick runs one protocol round: advertise then expire. Simulations call
// it directly; Serve loops it on the advertisement timer.
func (d *Daemon) Tick() {
	d.Advertise()
	d.Expire()
}

// Serve runs the protocol until done closes.
func (d *Daemon) Serve(done <-chan struct{}) {
	t := time.NewTicker(d.advertiseEvery)
	defer t.Stop()
	d.Advertise()
	for {
		select {
		case <-t.C:
			d.Tick()
		case <-done:
			return
		}
	}
}

// Learned lists the currently learned prefixes with metrics (for status
// displays).
func (d *Daemon) Learned() map[string]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int, len(d.learned))
	for p, lr := range d.learned {
		out[p.String()] = lr.metric
	}
	return out
}

// udpPayload extracts the UDP payload of an IPv4 datagram.
func udpPayload(data []byte) ([]byte, error) {
	h, err := pkt.ParseIPv4(data)
	if err != nil {
		return nil, err
	}
	if h.Protocol != pkt.ProtoUDP {
		return nil, fmt.Errorf("ripd: not UDP")
	}
	seg := data[h.HeaderLen():h.TotalLen]
	if len(seg) < pkt.UDPHeaderLen {
		return nil, pkt.ErrTruncated
	}
	return seg[pkt.UDPHeaderLen:], nil
}
