package ripd

import (
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routing"
)

// node is one router + daemon in a test topology.
type node struct {
	core   *ipcore.Router
	table  *routing.Table
	daemon *Daemon
}

func newNode(t *testing.T, name string) *node {
	t.Helper()
	table, err := routing.New(bmp.KindBSPL)
	if err != nil {
		t.Fatal(err)
	}
	n := &node{table: table}
	core, err := ipcore.New(ipcore.Config{
		Mode: ipcore.ModeBestEffort, Routes: table,
		LocalSink: func(p *pkt.Packet) {
			if p.Key.Proto == pkt.ProtoUDP && p.Key.DstPort == Port {
				n.daemon.HandlePacket(p)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.core = core
	n.daemon = New(core, table)
	return n
}

// addIf attaches an addressed interface.
func addIf(t *testing.T, n *node, idx int32, addr string) *netdev.Interface {
	t.Helper()
	ifc := netdev.NewInterface(idx, netdev.Config{Addr: pkt.MustParseAddr(addr)})
	n.core.AddInterface(ifc)
	return ifc
}

// pump drains all interfaces of all nodes until quiescent.
func pump(nodes ...*node) {
	for pass := 0; pass < 20; pass++ {
		moved := 0
		for _, n := range nodes {
			moved += n.core.Step()
		}
		if moved == 0 {
			break
		}
	}
}

// chain builds A — B — C with point-to-point links and per-node stub
// networks.
func chain(t *testing.T) (a, b, c *node) {
	a, b, c = newNode(t, "A"), newNode(t, "B"), newNode(t, "C")
	// Link addressing: 192.168.ab.x / 192.168.bc.x.
	aIf := addIf(t, a, 1, "192.168.1.1")
	bIfA := addIf(t, b, 1, "192.168.1.2")
	bIfC := addIf(t, b, 2, "192.168.2.1")
	cIf := addIf(t, c, 1, "192.168.2.2")
	netdev.Connect(aIf, bIfA)
	netdev.Connect(bIfC, cIf)
	// Stub networks behind each router (interface 0, unconnected).
	addIf(t, a, 0, "10.1.0.1")
	addIf(t, c, 0, "10.3.0.1")
	if err := a.daemon.Originate("10.1.0.0/16", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.daemon.Originate("10.3.0.0/16", 0); err != nil {
		t.Fatal(err)
	}
	return
}

func TestConvergence(t *testing.T) {
	a, b, c := chain(t)
	// Three advertisement rounds propagate A's and C's stubs across the
	// two hops.
	for round := 0; round < 3; round++ {
		a.daemon.Advertise()
		b.daemon.Advertise()
		c.daemon.Advertise()
		pump(a, b, c)
	}
	// B learned both stubs at metric 2.
	bl := b.daemon.Learned()
	if bl["10.1.0.0/16"] != 2 || bl["10.3.0.0/16"] != 2 {
		t.Fatalf("B learned %v", bl)
	}
	// A learned C's stub at metric 3 through B.
	al := a.daemon.Learned()
	if al["10.3.0.0/16"] != 3 {
		t.Fatalf("A learned %v", al)
	}
	// And the forwarding tables agree: A routes 10.3/16 via its link
	// interface toward B's gateway address.
	nh, ok := a.table.Lookup(pkt.MustParseAddr("10.3.9.9"), nil)
	if !ok || nh.IfIndex != 1 || nh.Gateway != pkt.MustParseAddr("192.168.1.2") {
		t.Fatalf("A's route to 10.3/16: %+v ok=%v", nh, ok)
	}
}

func TestEndToEndForwardingAfterConvergence(t *testing.T) {
	a, b, c := chain(t)
	for round := 0; round < 3; round++ {
		a.daemon.Advertise()
		b.daemon.Advertise()
		c.daemon.Advertise()
		pump(a, b, c)
	}
	// A packet from A's stub to C's stub traverses A -> B -> C and ends
	// at C's stub interface (which transmits into the void; count it).
	data, _ := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("10.1.5.5"), Dst: pkt.MustParseAddr("10.3.7.7"),
		SrcPort: 1000, DstPort: 2000, Payload: []byte("across the chain"),
	})
	// The stub interface also carried advertisement packets; count the
	// delta caused by the data packet alone.
	before := c.core.Interface(0).Stats().TxPackets
	if err := a.core.Interface(0).Inject(data); err != nil {
		t.Fatal(err)
	}
	pump(a, b, c)
	if got := c.core.Interface(0).Stats().TxPackets - before; got != 1 {
		t.Fatalf("C's stub interface transmitted %d data packets", got)
	}
	// TTL decremented by 3 hops is visible at no sink; check the
	// forwarding counters instead.
	if a.core.Stats().Forwarded == 0 || b.core.Stats().Forwarded == 0 || c.core.Stats().Forwarded == 0 {
		t.Error("some hop did not forward")
	}
}

func TestSplitHorizon(t *testing.T) {
	a, b, _ := chain(t)
	a.daemon.Advertise()
	pump(a, b)
	b.daemon.Advertise()
	pump(a, b)
	// A must not learn its own 10.1/16 back from B.
	if _, ok := a.daemon.Learned()["10.1.0.0/16"]; ok {
		t.Error("split horizon violated: A learned its own prefix")
	}
}

func TestRouteExpiry(t *testing.T) {
	a, b, c := chain(t)
	now := time.Unix(10000, 0)
	for _, n := range []*node{a, b, c} {
		n.daemon.SetClock(func() time.Time { return now })
		n.daemon.SetTimers(10*time.Second, 35*time.Second)
	}
	for round := 0; round < 3; round++ {
		a.daemon.Advertise()
		b.daemon.Advertise()
		c.daemon.Advertise()
		pump(a, b, c)
	}
	if b.daemon.Learned()["10.1.0.0/16"] != 2 {
		t.Fatal("not converged")
	}
	// A goes silent; B keeps refreshing from C only. After the
	// lifetime, A's stub is withdrawn at B.
	for i := 0; i < 5; i++ {
		now = now.Add(10 * time.Second)
		c.daemon.Tick()
		b.daemon.Tick()
		pump(b, c)
	}
	if _, ok := b.daemon.Learned()["10.1.0.0/16"]; ok {
		t.Error("dead route not expired")
	}
	if _, ok := b.table.Lookup(pkt.MustParseAddr("10.1.1.1"), nil); ok {
		t.Error("expired route still in the forwarding table")
	}
	// C's stub, still refreshed, survives.
	if b.daemon.Learned()["10.3.0.0/16"] != 2 {
		t.Error("live route expired")
	}
}

func TestPoisonedRouteWithdrawn(t *testing.T) {
	a, b, _ := chain(t)
	a.daemon.Advertise()
	pump(a, b)
	if b.daemon.Learned()["10.1.0.0/16"] != 2 {
		t.Fatal("setup failed")
	}
	// A poisons its route (metric 16).
	u := Update{From: "192.168.1.1", Routes: []RouteEntry{{Prefix: "10.1.0.0/16", Metric: Infinity}}}
	sendRaw(t, a, b, &u)
	if _, ok := b.daemon.Learned()["10.1.0.0/16"]; ok {
		t.Error("poisoned route survived")
	}
}

func TestMalformedUpdatesIgnored(t *testing.T) {
	a, b, _ := chain(t)
	// Garbage payload.
	data, _ := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("192.168.1.1"), Dst: pkt.AddrV4(0xffffffff),
		SrcPort: Port, DstPort: Port, TTL: 1, Payload: []byte("{not json"),
	})
	a.core.Interface(1).Transmit(mustPkt(t, data, 1))
	pump(a, b)
	// Bad from address.
	u := Update{From: "not-an-addr", Routes: []RouteEntry{{Prefix: "10.9.0.0/16", Metric: 1}}}
	sendRaw(t, a, b, &u)
	// Bad prefix inside an otherwise fine update.
	u2 := Update{From: "192.168.1.1", Routes: []RouteEntry{{Prefix: "zzz", Metric: 1}, {Prefix: "10.8.0.0/16", Metric: 1}}}
	sendRaw(t, a, b, &u2)
	learned := b.daemon.Learned()
	if _, ok := learned["10.9.0.0/16"]; ok {
		t.Error("update with bad from accepted")
	}
	if learned["10.8.0.0/16"] != 2 {
		t.Error("valid entry next to a bad one dropped")
	}
}

func sendRaw(t *testing.T, from, to *node, u *Update) {
	t.Helper()
	ifc := from.core.Interface(1)
	if err := from.daemon.sendUpdate(ifc, u); err != nil {
		t.Fatal(err)
	}
	pump(from, to)
}

func mustPkt(t *testing.T, data []byte, out int32) *pkt.Packet {
	t.Helper()
	p, err := pkt.NewPacket(data, -1)
	if err != nil {
		t.Fatal(err)
	}
	p.OutIf = out
	return p
}
