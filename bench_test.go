package eisr_test

// bench_test.go hosts one testing.B benchmark per evaluation artifact of
// the paper, mirroring the cmd/eisrbench experiments in `go test -bench`
// form:
//
//	BenchmarkTable2FilterLookup  — Table 2 (classification memory accesses)
//	BenchmarkTable3*             — Table 3 (the four kernel configurations)
//	BenchmarkFlowTable*          — in-text flow-cache costs (hash, hit, miss)
//	BenchmarkDAGvsLinear*        — §5.1.2 classifier scaling claim
//	BenchmarkScheduler*          — §6/§7.3 scheduler costs
//	BenchmarkDispatch*           — indirect (gate) vs hardwired call ablation

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/bmp"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/plugins"
	"github.com/routerplugins/eisr/internal/routing"
	"github.com/routerplugins/eisr/internal/sched"
	"github.com/routerplugins/eisr/internal/trafficgen"
)

type nullInst struct{}

func (nullInst) InstanceName() string             { return "null" }
func (nullInst) HandlePacket(p *pkt.Packet) error { return nil }

// --- Table 2 ---------------------------------------------------------

func BenchmarkTable2FilterLookup(b *testing.B) {
	for _, tc := range []struct {
		n  int
		v6 bool
	}{{16, false}, {10000, false}, {16, true}, {10000, true}} {
		fam := "IPv4"
		if tc.v6 {
			fam = "IPv6"
		}
		b.Run(fmt.Sprintf("%s/%dfilters", fam, tc.n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(7))
			a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, pcu.TypeSched)
			var inst nullInst
			for _, f := range trafficgen.FlowLikeFilters(rng, tc.n, tc.v6) {
				a.Bind(pcu.TypeSched, f, inst, nil)
			}
			keys := trafficgen.RandomKeys(rng, 1024, tc.v6)
			a.ClassifyKey(pcu.TypeSched, keys[0], nil) // build
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.ClassifyKey(pcu.TypeSched, keys[i&1023], nil)
			}
		})
	}
}

// --- Table 3 ---------------------------------------------------------

// table3Router assembles one Table 3 kernel configuration.
func table3Router(b *testing.B, mode ipcore.Mode, gates []pcu.Type, mono sched.Scheduler, drr bool) (*ipcore.Router, *netdev.Interface) {
	b.Helper()
	routes, err := routing.New(bmp.KindBSPL)
	if err != nil {
		b.Fatal(err)
	}
	routes.Add(pkt.MustParsePrefix("0.0.0.0/0"), routing.NextHop{IfIndex: 1})
	var a *aiu.AIU
	if mode == ipcore.ModePlugin {
		a = aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, gates...)
	}
	r, err := ipcore.New(ipcore.Config{
		Mode: mode, Gates: gates, AIU: a, Routes: routes, MonoSched: mono,
		VerifyChecksums: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := netdev.NewInterface(0, netdev.Config{})
	out := netdev.NewInterface(1, netdev.Config{})
	r.AddInterface(in)
	r.AddInterface(out)
	if a != nil {
		var inst nullInst
		for _, f := range trafficgen.Table3Filters() {
			if _, err := a.Bind(gates[0], f, inst, nil); err != nil {
				b.Fatal(err)
			}
		}
		if drr {
			env := &plugins.Env{Router: r, AIU: a}
			pl := plugins.NewDRRPlugin(env)
			msg := &pcu.Message{Kind: pcu.MsgCreateInstance, Args: map[string]string{"iface": "1", "quantum": "9180"}}
			if err := pl.Callback(msg); err != nil {
				b.Fatal(err)
			}
			if _, err := a.Bind(pcu.TypeSched, aiu.MatchAll(), msg.Reply.(pcu.Instance), nil); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, g := range gates {
				if _, err := a.Bind(g, aiu.MatchAll(), nullInst{}, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return r, in
}

func benchTable3(b *testing.B, r *ipcore.Router, in *netdev.Interface) {
	b.Helper()
	flows := trafficgen.Table3Flows()
	protos := make([][]byte, len(flows))
	for i, f := range flows {
		d, err := f.Datagram()
		if err != nil {
			b.Fatal(err)
		}
		protos[i] = d
	}
	b.SetBytes(int64(len(protos[0])))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := in.Inject(protos[i%3]); err != nil {
			b.Fatal(err)
		}
		p := in.Poll()
		r.ProcessOne(p)
	}
}

func BenchmarkTable3BestEffort(b *testing.B) {
	r, in := table3Router(b, ipcore.ModeBestEffort, nil, nil, false)
	benchTable3(b, r, in)
}

func BenchmarkTable3PluginFramework(b *testing.B) {
	gates := []pcu.Type{pcu.TypeOptions, pcu.TypeSecurity, pcu.TypeFirewall}
	r, in := table3Router(b, ipcore.ModePlugin, gates, nil, false)
	benchTable3(b, r, in)
}

func BenchmarkTable3ALTQDRR(b *testing.B) {
	r, in := table3Router(b, ipcore.ModeBestEffort, nil, sched.NewALTQDRR(256, 1500), false)
	benchTable3(b, r, in)
}

func BenchmarkTable3PluginDRR(b *testing.B) {
	r, in := table3Router(b, ipcore.ModePlugin, []pcu.Type{pcu.TypeSched}, nil, true)
	benchTable3(b, r, in)
}

// --- Flow table ------------------------------------------------------

func BenchmarkFlowTableHash(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	keys := trafficgen.RandomKeys(rng, 1024, true)
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= aiu.HashKey(keys[i&1023])
	}
	_ = sink
}

func BenchmarkFlowTableHit(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ft := aiu.NewFlowTable(32768, 1024, 65536, 4)
	keys := trafficgen.RandomKeys(rng, 1024, true)
	now := time.Now()
	for _, k := range keys {
		ft.Insert(k, now, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Lookup(keys[i&1023], now, nil)
	}
}

func BenchmarkFlowTableMissAndClassify(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL, MaxFlows: 1 << 20}, pcu.TypeSched)
	var inst nullInst
	for _, f := range trafficgen.FlowLikeFilters(rng, 1000, true) {
		a.Bind(pcu.TypeSched, f, inst, nil)
	}
	keys := trafficgen.RandomKeys(rng, 1<<16, true)
	a.ClassifyKey(pcu.TypeSched, keys[0], nil)
	now := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh flows force the miss path.
		p := &pkt.Packet{Key: keys[i&(1<<16-1)], KeyValid: true, OutIf: -1}
		p.Key.SrcPort = uint16(i) // make the key unique-ish
		a.LookupGate(p, pcu.TypeSched, now, nil)
	}
}

// --- Classifier scaling ----------------------------------------------

func BenchmarkDAGvsLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{64, 1024, 8192} {
		filters := trafficgen.FlowLikeFilters(rng, n, false)
		keys := trafficgen.RandomKeys(rng, 1024, false)
		a := aiu.New(aiu.Config{BMPKind: bmp.KindBSPL}, pcu.TypeSched)
		var recs []*aiu.FilterRecord
		for _, f := range filters {
			rec, _ := a.Bind(pcu.TypeSched, f, nullInst{}, nil)
			recs = append(recs, rec)
		}
		a.ClassifyKey(pcu.TypeSched, keys[0], nil)
		b.Run(fmt.Sprintf("DAG/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.ClassifyKey(pcu.TypeSched, keys[i&1023], nil)
			}
		})
		b.Run(fmt.Sprintf("linear/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k := keys[i&1023]
				for _, r := range recs {
					if r.Filter.Matches(k) {
						break
					}
				}
			}
		})
	}
}

// --- Schedulers ------------------------------------------------------

func BenchmarkSchedulerDRR(b *testing.B) {
	d := sched.NewDRR(1500, 1<<20)
	qs := [3]*sched.DRRQueue{}
	for i := range qs {
		qs[i] = d.NewQueue(fmt.Sprintf("f%d", i), 1)
	}
	p := &pkt.Packet{Data: make([]byte, 1000)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.EnqueueFlow(qs[i%3], p)
		d.Dequeue()
	}
}

func BenchmarkSchedulerHFSC(b *testing.B) {
	h := sched.NewHFSC(125e6)
	rt := sched.LinearCurve(40e6)
	cls := [3]*sched.Class{}
	for i := range cls {
		cls[i], _ = h.AddClass(fmt.Sprintf("c%d", i), nil, &rt, &rt, nil, nil)
	}
	p := &pkt.Packet{Data: make([]byte, 1000)}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1e-5
		h.EnqueueClass(cls[i%3], p, now)
		h.DequeueAt(now)
	}
}

func BenchmarkSchedulerALTQ(b *testing.B) {
	altq := sched.NewALTQDRR(256, 1500)
	data, _ := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.AddrV4(0x0a000001), Dst: pkt.AddrV4(0x14000001),
		SrcPort: 7, DstPort: 9, Payload: make([]byte, 992),
	})
	p, _ := pkt.NewPacket(data, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		altq.Enqueue(p)
		altq.Dequeue()
	}
}

// --- Dispatch ablation -------------------------------------------------

// BenchmarkDispatch contrasts a hardwired function call against the
// indirect per-flow instance call of the gate mechanism — the paper's
// claim that "picking the right instance of a plugin does not cost more
// than an indirect function call".
func BenchmarkDispatch(b *testing.B) {
	p := &pkt.Packet{Data: make([]byte, 64)}
	direct := func(q *pkt.Packet) error { return nil }
	var inst pcu.Instance = nullInst{}
	b.Run("hardwired", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			direct(p)
		}
	})
	b.Run("indirect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst.HandlePacket(p)
		}
	})
}
