#!/usr/bin/env bash
# wire_smoke.sh — end-to-end smoke of the netio wire path against a live
# daemon: boot eisrd with UDP overlay links (ingress on interface 0,
# egress on interface 1 aimed at the harness sink), push 10k
# UDP-encapsulated IP datagrams through the full gate/classifier path
# with `eisrbench -exp wire`, and fail on any unexplained loss.
# eisrbench exits nonzero when packets are lost; `pmgr links` must show
# the wire in the operator report, and the event journal must have
# recorded the boot. Readiness comes from the /healthz probe (200 only
# while the router serves), not from sleeping.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
BIN=bin
CTL=127.0.0.1:14242
METRICS=127.0.0.1:14280
INGRESS=127.0.0.1:19001
EGRESS=127.0.0.1:19002
SINK=127.0.0.1:19102
PACKETS=${WIRE_PACKETS:-10000}

$GO build -o $BIN/eisrd ./cmd/eisrd
$GO build -o $BIN/eisrbench ./cmd/eisrbench
$GO build -o $BIN/pmgr ./cmd/pmgr

CONF=$(mktemp)
DAEMON_PID=
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -f "$CONF"
}
trap cleanup EXIT

# The paper's boot configuration script: a drr instance bound match-all
# at the sched gate, default route out the wired egress interface.
cat > "$CONF" <<'EOF'
load drr
create drr iface=1
register drr drr0 'filter=<*, *, *, *, *, *>' weight=2
route add 0.0.0.0/0 dev 1
EOF

$BIN/eisrd -ctl $CTL -metrics $METRICS -router-id 1 -ifaces 2 -config "$CONF" \
    -link "0=$INGRESS," -link "1=$EGRESS,$SINK" &
DAEMON_PID=$!

# Readiness: /healthz flips to 200 only once Start has completed — the
# boot script has run and forwarding workers and wire drivers are up.
for i in $(seq 1 100); do
    if curl -fsS -o /dev/null "http://$METRICS/healthz" 2>/dev/null; then
        break
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "wire-smoke: eisrd died during startup" >&2
        exit 1
    fi
    if [ "$i" -eq 100 ]; then
        echo "wire-smoke: /healthz never went ready" >&2
        exit 1
    fi
    sleep 0.1
done

echo "wire-smoke: pushing $PACKETS packets through eisrd ($INGRESS -> $SINK)"
$BIN/eisrbench -exp wire -wire-daemon $INGRESS -wire-sink $SINK -wire-packets "$PACKETS"

echo "wire-smoke: pmgr links"
LINKS=$($BIN/pmgr -s $CTL links)
echo "$LINKS"
if ! echo "$LINKS" | grep -q udp; then
    echo "wire-smoke: pmgr links does not report the UDP links" >&2
    exit 1
fi

# The event journal recorded the boot: router start, the drr module
# load, the peer wiring, and the config mutations must all be visible
# to the operator.
echo "wire-smoke: pmgr events"
EVENTS=$($BIN/pmgr -s $CTL events max=64)
echo "$EVENTS"
for want in router-start plugin-load link-peer config; do
    if ! echo "$EVENTS" | grep -q "$want"; then
        echo "wire-smoke: event journal is missing a $want record" >&2
        exit 1
    fi
done

# Runtime sampling control round-trips through the control socket and
# itself lands in the journal.
$BIN/pmgr -s $CTL pathtrace 16 >/dev/null
if ! $BIN/pmgr -s $CTL events max=8 | grep -q path-sample; then
    echo "wire-smoke: pathtrace mutation not journaled" >&2
    exit 1
fi

echo "wire-smoke: OK"
