#!/usr/bin/env bash
# fib_churn_smoke.sh — full-table FIB smoke in two acts.
#
# Act 1 drives the route-feed daemon end to end against a live eisrd:
# generate a full-table dump (100k prefixes by default), attach it with
# -feed file:..., and verify the whole load arrived as ONE batch (one
# snapshot publication), that `pmgr feed` accounts for every route,
# that `pmgr routes max=N` caps the listing, that the journal recorded
# the feed connect/resync, and that the eisr_fib_feed_* telemetry
# family is exported.
#
# Act 2 is forwarding under churn: the EISR_BENCH_SMOKE churn guard
# pushes verified wire traffic through a two-router topology carrying
# the full-scale FIB while 10k route updates apply, and fails on any
# unexplained drop or a convergence outlier.
set -euo pipefail
cd "$(dirname "$0")/.."

GO=${GO:-go}
BIN=bin
CTL=127.0.0.1:14243
METRICS=127.0.0.1:14281
ROUTES=${FIB_ROUTES:-100000}

$GO build -o $BIN/eisrd ./cmd/eisrd
$GO build -o $BIN/pmgr ./cmd/pmgr

DUMP=$(mktemp)
DAEMON_PID=
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -f "$DUMP"
}
trap cleanup EXIT

# A full-table dump in the feed line protocol: /24s marching through
# 10.0.0.0/8 and up, all out the egress interface.
awk -v n="$ROUTES" 'BEGIN {
    for (i = 0; i < n; i++)
        printf "%d.%d.%d.0/24 dev 1\n", 10 + int(i / 65536), int(i / 256) % 256, i % 256
}' > "$DUMP"

$BIN/eisrd -ctl $CTL -metrics $METRICS -ifaces 2 -feed "file:$DUMP" &
DAEMON_PID=$!

for i in $(seq 1 100); do
    if curl -fsS -o /dev/null "http://$METRICS/healthz" 2>/dev/null; then
        break
    fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        echo "fib-churn-smoke: eisrd died during startup" >&2
        exit 1
    fi
    if [ "$i" -eq 100 ]; then
        echo "fib-churn-smoke: /healthz never went ready" >&2
        exit 1
    fi
    sleep 0.1
done

# The dump loads async under Start; poll the feed accounting until the
# full table is owned.
echo "fib-churn-smoke: waiting for $ROUTES routes to load from the dump feed"
for i in $(seq 1 300); do
    FEED=$($BIN/pmgr -s $CTL feed)
    if echo "$FEED" | grep -q "\"routes\": $ROUTES"; then
        break
    fi
    if [ "$i" -eq 300 ]; then
        echo "fib-churn-smoke: feed never reached $ROUTES routes:" >&2
        echo "$FEED" >&2
        exit 1
    fi
    sleep 0.1
done
echo "$FEED"
if ! echo "$FEED" | grep -q '"batches": 1'; then
    echo "fib-churn-smoke: dump did not load as one batch (one snapshot publication)" >&2
    exit 1
fi

# A capped listing stays usable against the full table.
NROWS=$($BIN/pmgr -s $CTL routes max=5 | grep -c '"prefix"')
if [ "$NROWS" -ne 5 ]; then
    echo "fib-churn-smoke: routes max=5 returned $NROWS rows" >&2
    exit 1
fi

# The journal saw the feed attach and converge.
EVENTS=$($BIN/pmgr -s $CTL events max=64)
for want in feed-connect feed-resync; do
    if ! echo "$EVENTS" | grep -q "$want"; then
        echo "fib-churn-smoke: event journal is missing a $want record" >&2
        exit 1
    fi
done

# Per-source feed telemetry is exported.
if ! curl -fsS "http://$METRICS/metrics" | grep -q '^eisr_fib_feed_routes'; then
    echo "fib-churn-smoke: eisr_fib_feed_routes missing from /metrics" >&2
    exit 1
fi

kill "$DAEMON_PID" 2>/dev/null || true
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=

# Act 2: forwarding under churn — 100k prefixes, 10k updates applied
# while verified traffic forwards; zero unexplained drops and bounded
# per-batch convergence, enforced by the test.
echo "fib-churn-smoke: forwarding under churn"
EISR_BENCH_SMOKE=1 $GO test -run 'TestBenchSmokeFIBChurn' -count=1 -v ./internal/bench

echo "fib-churn-smoke: OK"
