package eisr

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/ctl"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/routefeed"
)

func mustAddr(t *testing.T, s string) pkt.Addr {
	t.Helper()
	a, err := pkt.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestFeedFileLoad drives the full wiring: a dump file attached with
// AttachFeed loads under Start, and "pmgr feed" reports it.
func TestFeedFileLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full-table.txt")
	const n = 500
	var body []byte
	for i := 0; i < n; i++ {
		body = append(body, fmt.Sprintf("10.%d.%d.0/24 dev 1\n", i/250, i%250)...)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := New(Options{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddInterface(0, "in", "192.0.2.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddInterface(1, "out", ""); err != nil {
		t.Fatal(err)
	}
	if err := r.AttachFeed("file:" + path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.FeedReport(); err != nil {
		t.Fatalf("feed attached but FeedReport failed: %v", err)
	}
	r.Start()
	defer r.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for r.Routes.Len() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if r.Routes.Len() != n {
		t.Fatalf("table has %d routes, want %d", r.Routes.Len(), n)
	}

	// The control surface: feed status and a capped route listing.
	data, err := r.Control(&ctl.Request{Op: ctl.OpFeed})
	if err != nil {
		t.Fatal(err)
	}
	sts, ok := data.([]routefeed.SourceStatus)
	if !ok || len(sts) != 1 {
		t.Fatalf("feed payload = %#v", data)
	}
	if sts[0].Routes != n || sts[0].Batches != 1 {
		t.Fatalf("feed status = %+v, want %d routes in 1 batch", sts[0], n)
	}
	capped, err := r.Control(&ctl.Request{Op: ctl.OpRoutes, Args: map[string]string{"max": "10"}})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(capped)
	var rows []map[string]any
	if err := json.Unmarshal(raw, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("routes max=10 returned %d rows", len(rows))
	}
}

// TestFeedReportWithoutFeed checks the error path for "pmgr feed" on a
// router with no feed attached.
func TestFeedReportWithoutFeed(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Control(&ctl.Request{Op: ctl.OpFeed}); err == nil {
		t.Fatal("feed report succeeded with no feed attached")
	}
}

// TestRouteDaemonThroughFeed checks that enabling the feed before the
// route daemon routes RIP's table programming through a feed sink, so
// its routes appear in the per-source feed accounting.
func TestRouteDaemonThroughFeed(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddInterface(0, "lan", "192.0.2.1"); err != nil {
		t.Fatal(err)
	}
	r.EnableFeed(routefeed.Options{})
	d := r.EnableRouteDaemon()
	if err := d.Originate("10.5.0.0/16", 0); err != nil {
		t.Fatal(err)
	}
	nh, ok := r.Routes.Lookup(mustAddr(t, "10.5.1.1"), nil)
	if !ok || nh.IfIndex != 0 {
		t.Fatalf("originated route missing: %+v ok %v", nh, ok)
	}
	sts, err := r.FeedReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 1 || sts[0].Name != "rip" || sts[0].Routes != 1 {
		t.Fatalf("feed status = %+v, want rip owning 1 route", sts)
	}
}
