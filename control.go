package eisr

import (
	"bufio"
	"fmt"
	"io"
	"net"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/ctl"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// Control implements ctl.Backend: the router side of the control socket
// that pmgr and the daemons speak to.
func (r *Router) Control(req *ctl.Request) (any, error) {
	switch req.Op {
	case ctl.OpLoad:
		return nil, r.LoadPlugin(req.Plugin)
	case ctl.OpUnload:
		return nil, r.UnloadPlugin(req.Plugin)
	case ctl.OpPlugins:
		type pluginInfo struct {
			Name string `json:"name"`
			Code string `json:"code"`
		}
		var out []pluginInfo
		for _, p := range r.PCU.Plugins() {
			out = append(out, pluginInfo{Name: p.PluginName(), Code: p.PluginCode().String()})
		}
		return out, nil
	case ctl.OpCreate:
		return r.CreateInstance(req.Plugin, req.Args)
	case ctl.OpFree:
		return nil, r.FreeInstance(req.Plugin, req.Instance)
	case ctl.OpInstances:
		p, ok := r.PCU.Lookup(req.Plugin)
		if !ok {
			return nil, fmt.Errorf("eisr: plugin %q not loaded", req.Plugin)
		}
		var names []string
		for _, in := range r.PCU.Instances(p.PluginCode()) {
			names = append(names, in.InstanceName())
		}
		return names, nil
	case ctl.OpRegister:
		return nil, r.Register(req.Plugin, req.Instance, req.Args)
	case ctl.OpDeregister:
		filter := ""
		if req.Args != nil {
			filter = req.Args["filter"]
		}
		return nil, r.Deregister(req.Plugin, req.Instance, filter)
	case ctl.OpMessage:
		return r.Message(req.Plugin, req.Instance, req.Verb, req.Args)
	case ctl.OpRouteAdd:
		return nil, r.AddRoute(req.Route)
	case ctl.OpRouteDel:
		return nil, r.DelRoute(req.Route)
	case ctl.OpRoutes:
		type routeInfo struct {
			Prefix string `json:"prefix"`
			Dev    int32  `json:"dev"`
			Via    string `json:"via,omitempty"`
			Metric int    `json:"metric"`
		}
		var out []routeInfo
		var noGateway pkt.Addr
		for _, rt := range r.Routes.Routes() {
			ri := routeInfo{Prefix: rt.Prefix.String(), Dev: rt.NextHop.IfIndex, Metric: rt.NextHop.Metric}
			if rt.NextHop.Gateway != noGateway {
				ri.Via = rt.NextHop.Gateway.String()
			}
			out = append(out, ri)
		}
		return out, nil
	case ctl.OpFilters:
		if r.AIU == nil {
			return nil, fmt.Errorf("eisr: no classifier in best-effort mode")
		}
		g := gateByName(req.Gate)
		if g == pcu.TypeInvalid {
			return nil, fmt.Errorf("eisr: unknown gate %q", req.Gate)
		}
		ft, ok := r.AIU.Table(g)
		if !ok {
			return nil, fmt.Errorf("eisr: gate %s not configured", g)
		}
		var out []string
		for _, rec := range ft.Records() {
			out = append(out, rec.String())
		}
		return out, nil
	case ctl.OpStats:
		return r.Core.Stats(), nil
	case ctl.OpFlows:
		if r.AIU == nil {
			return nil, fmt.Errorf("eisr: no classifier in best-effort mode")
		}
		return r.AIU.FlowTable().Stats(), nil
	default:
		return nil, fmt.Errorf("eisr: unknown op %q", req.Op)
	}
}

// RunConfigScript executes a boot configuration script: pmgr commands,
// one per line, comments with '#', quotes protecting filter specs — the
// paper's "configuration script during system initialization". It stops
// at the first failing line.
func (r *Router) RunConfigScript(src io.Reader) error {
	sc := bufio.NewScanner(src)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		tokens := ctl.SplitLine(sc.Text())
		if len(tokens) == 0 {
			continue
		}
		req, err := ctl.ParseCommand(tokens)
		if err != nil {
			return fmt.Errorf("eisr: config line %d: %w", lineNo, err)
		}
		if _, err := r.Control(req); err != nil {
			return fmt.Errorf("eisr: config line %d (%s): %w", lineNo, sc.Text(), err)
		}
	}
	return sc.Err()
}

// ServeControl serves the control protocol on a listener until the
// listener closes. Run it in a goroutine:
//
//	ln, _ := net.Listen("tcp", "127.0.0.1:0")
//	go r.ServeControl(ln)
func (r *Router) ServeControl(ln net.Listener) error {
	return ctl.NewServer(r).Serve(ln)
}

// ensure interface satisfaction.
var _ ctl.Backend = (*Router)(nil)

// FlowStats re-exports the flow-cache statistics type for API users.
type FlowStats = aiu.FlowStats
