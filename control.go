package eisr

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"

	"github.com/routerplugins/eisr/internal/aiu"
	"github.com/routerplugins/eisr/internal/ctl"
	"github.com/routerplugins/eisr/internal/ipcore"
	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
	"github.com/routerplugins/eisr/internal/telemetry"
)

// Control implements ctl.Backend: the router side of the control socket
// that pmgr and the daemons speak to. Successful mutating operations
// are recorded in the event journal (plugin load/unload journal their
// own lifecycle events instead).
func (r *Router) Control(req *ctl.Request) (any, error) {
	out, err := r.control(req)
	if err == nil {
		switch req.Op {
		case ctl.OpCreate, ctl.OpFree, ctl.OpRegister, ctl.OpDeregister,
			ctl.OpRouteAdd, ctl.OpRouteDel, ctl.OpQuarantine:
			r.Telemetry.Journal().Record(telemetry.EvConfig, configDetail(req))
		}
	}
	return out, err
}

// configDetail renders a mutating request for the journal.
func configDetail(req *ctl.Request) string {
	parts := []string{string(req.Op)}
	if req.Plugin != "" {
		parts = append(parts, req.Plugin)
	}
	if req.Instance != "" {
		parts = append(parts, req.Instance)
	}
	if req.Route != "" {
		parts = append(parts, req.Route)
	}
	return strings.Join(parts, " ")
}

func (r *Router) control(req *ctl.Request) (any, error) {
	switch req.Op {
	case ctl.OpLoad:
		return nil, r.LoadPlugin(req.Plugin)
	case ctl.OpUnload:
		return nil, r.UnloadPlugin(req.Plugin)
	case ctl.OpPlugins:
		type pluginInfo struct {
			Name string `json:"name"`
			Code string `json:"code"`
		}
		var out []pluginInfo
		for _, p := range r.PCU.Plugins() {
			out = append(out, pluginInfo{Name: p.PluginName(), Code: p.PluginCode().String()})
		}
		return out, nil
	case ctl.OpCreate:
		return r.CreateInstance(req.Plugin, req.Args)
	case ctl.OpFree:
		return nil, r.FreeInstance(req.Plugin, req.Instance)
	case ctl.OpInstances:
		p, ok := r.PCU.Lookup(req.Plugin)
		if !ok {
			return nil, fmt.Errorf("eisr: plugin %q not loaded", req.Plugin)
		}
		var names []string
		for _, in := range r.PCU.Instances(p.PluginCode()) {
			names = append(names, in.InstanceName())
		}
		return names, nil
	case ctl.OpRegister:
		return nil, r.Register(req.Plugin, req.Instance, req.Args)
	case ctl.OpDeregister:
		filter := ""
		if req.Args != nil {
			filter = req.Args["filter"]
		}
		return nil, r.Deregister(req.Plugin, req.Instance, filter)
	case ctl.OpMessage:
		return r.Message(req.Plugin, req.Instance, req.Verb, req.Args)
	case ctl.OpRouteAdd:
		return nil, r.AddRoute(req.Route)
	case ctl.OpRouteDel:
		return nil, r.DelRoute(req.Route)
	case ctl.OpRoutes:
		type routeInfo struct {
			Prefix string `json:"prefix"`
			Dev    int32  `json:"dev"`
			Via    string `json:"via,omitempty"`
			Metric int    `json:"metric"`
		}
		// max caps the listing — "pmgr routes max=20" stays usable
		// against a full-table FIB where the complete dump would be a
		// million rows of JSON.
		max := 0
		if req.Args != nil && req.Args["max"] != "" {
			n, err := strconv.Atoi(req.Args["max"])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("eisr: routes wants a positive max, got %q", req.Args["max"])
			}
			max = n
		}
		list := r.Routes.Routes()
		if max > 0 && len(list) > max {
			list = list[:max]
		}
		var out []routeInfo
		var noGateway pkt.Addr
		for _, rt := range list {
			ri := routeInfo{Prefix: rt.Prefix.String(), Dev: rt.NextHop.IfIndex, Metric: rt.NextHop.Metric}
			if rt.NextHop.Gateway != noGateway {
				ri.Via = rt.NextHop.Gateway.String()
			}
			out = append(out, ri)
		}
		return out, nil
	case ctl.OpFeed:
		return r.FeedReport()
	case ctl.OpFilters:
		if r.AIU == nil {
			return nil, fmt.Errorf("eisr: no classifier in best-effort mode")
		}
		g := gateByName(req.Gate)
		if g == pcu.TypeInvalid {
			return nil, fmt.Errorf("eisr: unknown gate %q", req.Gate)
		}
		ft, ok := r.AIU.Table(g)
		if !ok {
			return nil, fmt.Errorf("eisr: gate %s not configured", g)
		}
		var out []string
		for _, rec := range ft.Records() {
			out = append(out, rec.String())
		}
		return out, nil
	case ctl.OpStats:
		return r.StatsReport(), nil
	case ctl.OpHealth:
		return r.HealthReport(), nil
	case ctl.OpLinks:
		return r.LinksReport(), nil
	case ctl.OpQuarantine:
		return nil, r.Quarantine(req.Plugin, req.Instance)
	case ctl.OpFlows:
		if r.AIU == nil {
			return nil, fmt.Errorf("eisr: no classifier in best-effort mode")
		}
		return r.AIU.FlowTable().Stats(), nil
	case ctl.OpTrace:
		if r.Telemetry == nil || r.Telemetry.Tracer() == nil {
			return nil, fmt.Errorf("eisr: packet tracing requires Options.Telemetry")
		}
		max := 32
		if req.Args != nil && req.Args["max"] != "" {
			n, err := strconv.Atoi(req.Args["max"])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("eisr: trace wants a positive count, got %q", req.Args["max"])
			}
			max = n
		}
		return r.Telemetry.Tracer().Snapshot(max), nil
	case ctl.OpSpans:
		pt := r.Telemetry.PathTracer()
		if pt == nil {
			return nil, fmt.Errorf("eisr: path tracing requires Options.Telemetry")
		}
		max := 32
		if req.Args != nil && req.Args["max"] != "" {
			n, err := strconv.Atoi(req.Args["max"])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("eisr: spans wants a positive count, got %q", req.Args["max"])
			}
			max = n
		}
		return pt.SnapshotSpans(max), nil
	case ctl.OpEvents:
		j := r.Telemetry.Journal()
		if j == nil {
			return nil, fmt.Errorf("eisr: the event journal requires Options.Telemetry")
		}
		var since uint64
		max := 64
		if req.Args != nil && req.Args["since"] != "" {
			n, err := strconv.ParseUint(req.Args["since"], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("eisr: events wants since=SEQ, got %q", req.Args["since"])
			}
			since = n
		}
		if req.Args != nil && req.Args["max"] != "" {
			n, err := strconv.Atoi(req.Args["max"])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("eisr: events wants a positive max, got %q", req.Args["max"])
			}
			max = n
		}
		type eventsReply struct {
			Next   uint64                  `json:"next"`
			Events []telemetry.EventSample `json:"events"`
		}
		return eventsReply{Next: j.NextSeq(), Events: j.Snapshot(since, max)}, nil
	case ctl.OpPathTrace:
		pt := r.Telemetry.PathTracer()
		if pt == nil {
			return nil, fmt.Errorf("eisr: path tracing requires Options.Telemetry")
		}
		if req.Args != nil && req.Args["sample"] != "" {
			n, err := strconv.Atoi(req.Args["sample"])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("eisr: pathtrace wants a sampling rate >= 0, got %q", req.Args["sample"])
			}
			pt.SetSampleRate(n)
			r.Telemetry.Journal().Record(telemetry.EvPathSample, "sample="+req.Args["sample"])
		}
		return pt.Status(), nil
	default:
		return nil, fmt.Errorf("eisr: unknown op %q", req.Op)
	}
}

// GateStat is one gate's dispatch accounting in a StatsReport.
type GateStat struct {
	Gate     string `json:"gate"`
	Dispatch uint64 `json:"dispatch"`
}

// FlowCacheStat summarizes the AIU flow cache in a StatsReport.
type FlowCacheStat struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	HitRatio  float64 `json:"hit_ratio"`
	Inserts   uint64  `json:"inserts"`
	Evictions uint64  `json:"evictions"`
	Live      int64   `json:"live"`
}

// PluginStat is one plugin's instance count in a StatsReport.
type PluginStat struct {
	Plugin    string `json:"plugin"`
	Instances int64  `json:"instances"`
}

// IfaceStat is one interface's packet accounting in a StatsReport,
// with drops broken down by reason.
type IfaceStat struct {
	Iface int32        `json:"iface"`
	Name  string       `json:"name"`
	Stats netdev.Stats `json:"stats"`
}

// StatsReport is the "pmgr stats" payload: the core counters and
// per-interface accounting (drop reasons included) always, wire-link
// counters when netio links are attached, plus per-gate dispatch
// counts, flow-cache accounting, and per-plugin instance counts when
// the router was assembled with Options.Telemetry.
type StatsReport struct {
	Core       ipcore.Stats      `json:"core"`
	Interfaces []IfaceStat       `json:"interfaces,omitempty"`
	Links      []netdev.LinkInfo `json:"links,omitempty"`
	Gates      []GateStat        `json:"gates,omitempty"`
	FlowCache  *FlowCacheStat    `json:"flow_cache,omitempty"`
	Plugins    []PluginStat      `json:"plugins,omitempty"`
}

// StatsReport builds the stats payload from the live counters and, when
// telemetry is attached, one registry snapshot.
func (r *Router) StatsReport() StatsReport {
	rep := StatsReport{Core: r.Core.Stats()}
	for _, ifc := range r.Core.Interfaces() {
		rep.Interfaces = append(rep.Interfaces, IfaceStat{
			Iface: ifc.Index, Name: ifc.Name, Stats: ifc.Stats(),
		})
	}
	rep.Links = r.LinksReport()
	if r.Telemetry == nil {
		return rep
	}
	labelValue := func(m telemetry.MetricValue, key string) string {
		for _, l := range m.Labels {
			if l.Key == key {
				return l.Value
			}
		}
		return ""
	}
	var fc FlowCacheStat
	sawCache := false
	for _, m := range r.Telemetry.Snapshot() {
		switch m.Family {
		case "eisr_gate_dispatch_total":
			rep.Gates = append(rep.Gates, GateStat{Gate: labelValue(m, "gate"), Dispatch: m.Counter})
		case "eisr_flowcache_total":
			sawCache = true
			if labelValue(m, "result") == "hit" {
				fc.Hits = m.Counter
			} else {
				fc.Misses = m.Counter
			}
		case "eisr_flowcache_inserts_total":
			fc.Inserts = m.Counter
		case "eisr_flowcache_evictions_total":
			fc.Evictions = m.Counter
		case "eisr_flowcache_live":
			fc.Live = m.Gauge
		case "eisr_plugin_instances":
			rep.Plugins = append(rep.Plugins, PluginStat{Plugin: labelValue(m, "plugin"), Instances: m.Gauge})
		}
	}
	if sawCache {
		if total := fc.Hits + fc.Misses; total > 0 {
			fc.HitRatio = float64(fc.Hits) / float64(total)
		}
		rep.FlowCache = &fc
	}
	// The registry snapshot iterates a map; order the derived lists so
	// repeated "pmgr stats" calls (and CI assertions) are deterministic.
	sort.Slice(rep.Gates, func(i, j int) bool { return rep.Gates[i].Gate < rep.Gates[j].Gate })
	sort.Slice(rep.Plugins, func(i, j int) bool { return rep.Plugins[i].Plugin < rep.Plugins[j].Plugin })
	return rep
}

// RunConfigScript executes a boot configuration script: pmgr commands,
// one per line, comments with '#', quotes protecting filter specs — the
// paper's "configuration script during system initialization". It stops
// at the first failing line.
func (r *Router) RunConfigScript(src io.Reader) error {
	sc := bufio.NewScanner(src)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		tokens := ctl.SplitLine(sc.Text())
		if len(tokens) == 0 {
			continue
		}
		req, err := ctl.ParseCommand(tokens)
		if err != nil {
			return fmt.Errorf("eisr: config line %d: %w", lineNo, err)
		}
		if _, err := r.Control(req); err != nil {
			return fmt.Errorf("eisr: config line %d (%s): %w", lineNo, sc.Text(), err)
		}
	}
	return sc.Err()
}

// ServeControl serves the control protocol on a listener until the
// listener closes. Run it in a goroutine:
//
//	ln, _ := net.Listen("tcp", "127.0.0.1:0")
//	go r.ServeControl(ln)
func (r *Router) ServeControl(ln net.Listener) error {
	return ctl.NewServer(r).Serve(ln)
}

// ensure interface satisfaction.
var _ ctl.Backend = (*Router)(nil)

// FlowStats re-exports the flow-cache statistics type for API users.
type FlowStats = aiu.FlowStats
