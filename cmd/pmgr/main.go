// Command pmgr is the Plugin Manager (§3.1): "a simple application which
// takes arguments from the command line and translates them into calls
// to the user-space Router Plugin Library". It speaks the control
// protocol to a running eisrd.
//
//	pmgr -s 127.0.0.1:4242 load drr
//	pmgr create drr iface=1 quantum=1500
//	pmgr register drr drr0 'filter=<129.*.*.*, *, TCP, *, *, *>' weight=4
//	pmgr msg drr drr0 stats
//	pmgr route add 0.0.0.0/0 dev 1
//	pmgr filters sched
//	pmgr stats
//	pmgr trace 16
//	pmgr health
//	pmgr quarantine chaos-options chaos-options0
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/routerplugins/eisr/internal/ctl"
)

func main() {
	server := flag.String("s", "127.0.0.1:4242", "eisrd control socket address")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: pmgr [-s ADDR] COMMAND ...

commands:
  load PLUGIN | unload PLUGIN | plugins
  create PLUGIN [key=value ...]
  free PLUGIN INSTANCE | instances PLUGIN
  register PLUGIN INSTANCE filter=SPEC [key=value ...]
  deregister PLUGIN INSTANCE filter=SPEC
  msg PLUGIN [INSTANCE] VERB [key=value ...]
  route add PREFIX dev N [via GW] [metric M] | route del PREFIX | routes
  filters GATE | stats | flows | trace [N]
  health | quarantine PLUGIN INSTANCE
  links
`)
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	req, err := ctl.ParseCommand(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmgr:", err)
		os.Exit(2)
	}
	c, err := ctl.Dial("tcp", *server)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmgr: cannot reach eisrd:", err)
		os.Exit(1)
	}
	defer c.Close()
	data, err := c.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmgr:", err)
		os.Exit(1)
	}
	fmt.Println(ctl.FormatData(data))
}
