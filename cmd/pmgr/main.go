// Command pmgr is the Plugin Manager (§3.1): "a simple application which
// takes arguments from the command line and translates them into calls
// to the user-space Router Plugin Library". It speaks the control
// protocol to a running eisrd.
//
//	pmgr -s 127.0.0.1:4242 load drr
//	pmgr create drr iface=1 quantum=1500
//	pmgr register drr drr0 'filter=<129.*.*.*, *, TCP, *, *, *>' weight=4
//	pmgr msg drr drr0 stats
//	pmgr route add 0.0.0.0/0 dev 1
//	pmgr filters sched
//	pmgr stats
//	pmgr trace 16
//	pmgr spans 8
//	pmgr events -f
//	pmgr pathtrace 64
//	pmgr health
//	pmgr quarantine chaos-options chaos-options0
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"github.com/routerplugins/eisr/internal/ctl"
	"github.com/routerplugins/eisr/internal/telemetry"
)

func main() {
	server := flag.String("s", "127.0.0.1:4242", "eisrd control socket address")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage: pmgr [-s ADDR] COMMAND ...

commands:
  load PLUGIN | unload PLUGIN | plugins
  create PLUGIN [key=value ...]
  free PLUGIN INSTANCE | instances PLUGIN
  register PLUGIN INSTANCE filter=SPEC [key=value ...]
  deregister PLUGIN INSTANCE filter=SPEC
  msg PLUGIN [INSTANCE] VERB [key=value ...]
  route add PREFIX dev N [via GW] [metric M] | route del PREFIX
  routes [max=N] | feed
  filters GATE | stats | flows | trace [N]
  spans [N] | events [-f] [since=K] [max=N] | pathtrace [N]
  health | quarantine PLUGIN INSTANCE
  links
`)
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	// "events -f" follows the journal: the -f token is pmgr-side (the
	// wire op is plain "events" polled with a since= cursor).
	args, follow := stripFollow(flag.Args())
	req, err := ctl.ParseCommand(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmgr:", err)
		os.Exit(2)
	}
	if follow && req.Op != ctl.OpEvents {
		fmt.Fprintln(os.Stderr, "pmgr: -f only applies to events")
		os.Exit(2)
	}
	c, err := ctl.Dial("tcp", *server)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmgr: cannot reach eisrd:", err)
		os.Exit(1)
	}
	defer c.Close()
	if follow {
		if err := followEvents(c, req); err != nil {
			fmt.Fprintln(os.Stderr, "pmgr:", err)
			os.Exit(1)
		}
		return
	}
	data, err := c.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmgr:", err)
		os.Exit(1)
	}
	fmt.Println(ctl.FormatData(data))
}

// stripFollow removes a "-f" token following the command word.
func stripFollow(args []string) ([]string, bool) {
	out := args[:0:0]
	follow := false
	for _, a := range args {
		if a == "-f" {
			follow = true
			continue
		}
		out = append(out, a)
	}
	return out, follow
}

// eventsReply mirrors the router's events payload.
type eventsReply struct {
	Next   uint64                  `json:"next"`
	Events []telemetry.EventSample `json:"events"`
}

// followEvents polls the journal with a since cursor, printing one line
// per event, until the connection drops or the user interrupts.
func followEvents(c *ctl.Client, req *ctl.Request) error {
	if req.Args == nil {
		req.Args = map[string]string{}
	}
	for {
		data, err := c.Do(req)
		if err != nil {
			return err
		}
		var rep eventsReply
		if err := json.Unmarshal(data, &rep); err != nil {
			return err
		}
		for _, ev := range rep.Events {
			fmt.Printf("%s  %-18s %s\n", ev.Time.Format(time.RFC3339Nano), ev.Kind, ev.Detail)
		}
		req.Args["since"] = strconv.FormatUint(rep.Next, 10)
		time.Sleep(500 * time.Millisecond)
	}
}
