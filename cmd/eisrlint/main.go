// Command eisrlint runs the EISR invariant analyzers over Go packages.
// It enforces mechanically what the paper enforces by construction: the
// fast-path discipline of the gate/flow-cache machinery (§3.2, §5.2),
// the lock scoping the AIU/PCU split requires, the standardized plugin
// message set (§4), and error hygiene on the control plane.
//
// Standalone:
//
//	eisrlint ./...
//	go run ./cmd/eisrlint ./...
//
// As a go vet tool (the unitchecker protocol — go vet computes the
// package graph and export data, then invokes the tool once per
// package with a *.cfg file):
//
//	go vet -vettool=$(which eisrlint) ./...
//
// Exit status: 0 no findings, 1 findings, 2 usage or load failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/routerplugins/eisr/internal/analysis"
	"github.com/routerplugins/eisr/internal/analysis/errcheckctl"
	"github.com/routerplugins/eisr/internal/analysis/fastpath"
	"github.com/routerplugins/eisr/internal/analysis/lifecycle"
	"github.com/routerplugins/eisr/internal/analysis/lockorder"
	"github.com/routerplugins/eisr/internal/analysis/lockscope"
	"github.com/routerplugins/eisr/internal/analysis/mbufown"
	"github.com/routerplugins/eisr/internal/analysis/snapdiscipline"
)

// analyzers is the EISR suite. errcheckctl is scoped to control-plane
// packages; the rest run everywhere. lockorder additionally gets a
// whole-program resolution pass in standalone mode (go vet runs one
// process per package, so there it stays per-package).
var analyzers = []*analysis.Analyzer{
	fastpath.Analyzer,
	lockscope.Analyzer,
	lifecycle.Analyzer,
	errcheckctl.Analyzer,
	mbufown.Analyzer,
	lockorder.Analyzer,
	snapdiscipline.Analyzer,
}

// output modes (standalone only; go vet never routes these flags).
var (
	jsonOut    bool
	githubOut  bool
	summaryOut bool
)

// suiteStats accumulates per-analyzer findings and wall time across
// packages for the -summary report.
type suiteStat struct {
	findings int
	dur      time.Duration
}

var suiteStats = map[string]*suiteStat{}

func statFor(name string) *suiteStat {
	s := suiteStats[name]
	if s == nil {
		s = &suiteStat{}
		suiteStats[name] = s
	}
	return s
}

func main() {
	// The go command probes vet tools with -V=full to build its cache
	// key; answer before flag parsing so unknown future flags don't
	// trip us.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			// The go command demands a buildID it can fold into its action
			// cache key; hash the tool binary so the ID changes when the
			// analyzers do.
			name, sum := "eisrlint", [32]byte{}
			if exe, err := os.Executable(); err == nil {
				if data, err := os.ReadFile(exe); err == nil {
					sum = sha256.Sum256(data)
				}
			}
			fmt.Printf("%s version devel buildID=%02x\n", name, sum)
			return
		}
		// The second probe: go vet asks for the tool's flags as JSON so it
		// can route its own command line. The suite takes no vet-routed
		// flags, so the answer is the empty set.
		if arg == "-flags" || arg == "--flags" {
			fmt.Println("[]")
			return
		}
	}

	flags := flag.NewFlagSet("eisrlint", flag.ExitOnError)
	noTests := flags.Bool("skip-tests", false, "do not include _test.go files in the analysis")
	list := flags.Bool("list", false, "list the analyzers and exit")
	flags.BoolVar(&jsonOut, "json", false, "emit diagnostics as a JSON array on stdout")
	flags.BoolVar(&githubOut, "github", false, "emit GitHub Actions ::error annotations on stdout")
	flags.BoolVar(&summaryOut, "summary", false, "print a per-analyzer findings/duration summary")
	flags.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eisrlint [packages]\n       go vet -vettool=$(which eisrlint) [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := flags.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	args := flags.Args()

	// Unitchecker mode: a single argument ending in .cfg.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	loader := &analysis.Loader{Tests: !*noTests}
	pkgs, err := loader.Load(args...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eisrlint: %v\n", err)
		os.Exit(2)
	}
	bad := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "eisrlint: %v\n", terr)
			bad = true
		}
	}
	if bad {
		os.Exit(2)
	}
	var diags []analysis.Diagnostic
	prog := lockorder.NewProgram()
	for _, pkg := range pkgs {
		diags = append(diags, runSuite(pkg)...)
		prog.Add(lockorder.CollectPackage(pkg))
	}
	diags = append(diags, wholeProgramCycles(prog, diags)...)
	printDiags(loader.Fset(), diags)
	if summaryOut {
		printSummary()
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// wholeProgramCycles resolves the joined lock graph and returns the
// cycles the per-package pass could not see (those whose edges span
// packages); cycles already reported per-package are skipped.
func wholeProgramCycles(prog *lockorder.Program, already []analysis.Diagnostic) []analysis.Diagnostic {
	t0 := time.Now()
	seen := make(map[string]bool)
	for _, d := range already {
		if d.Analyzer == lockorder.Analyzer.Name {
			seen[d.Message] = true
		}
	}
	var out []analysis.Diagnostic
	for _, f := range prog.CycleFindings() {
		if seen[f.Message] {
			continue
		}
		out = append(out, analysis.Diagnostic{
			Pos:      f.Pos,
			Analyzer: lockorder.Analyzer.Name,
			Message:  f.Message,
		})
	}
	st := statFor(lockorder.Analyzer.Name)
	st.dur += time.Since(t0)
	st.findings += len(out)
	return out
}

// printSummary writes the one-line-per-analyzer report (name, findings,
// wall time) in suite order.
func printSummary() {
	for _, a := range analyzers {
		st := statFor(a.Name)
		fmt.Fprintf(os.Stderr, "eisrlint: %-14s %4d findings  %8.1fms\n",
			a.Name, st.findings, float64(st.dur.Microseconds())/1000)
	}
}

// runSuite applies the analyzers that pertain to one package.
func runSuite(pkg *analysis.Package) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, a := range analyzers {
		if a == errcheckctl.Analyzer && !errcheckctl.ControlPlane(pkg.PkgPath) {
			continue
		}
		t0 := time.Now()
		ds, err := analysis.RunAnalyzer(a, pkg)
		st := statFor(a.Name)
		st.dur += time.Since(t0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "eisrlint: %v\n", err)
			continue
		}
		st.findings += len(ds)
		out = append(out, ds...)
	}
	return out
}

// jsonDiag is the -json wire row.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	// Every analyzer notes a malformed //eisr:allow at the same spot;
	// keep position-identical messages once.
	kept := diags[:0]
	for i, d := range diags {
		if i > 0 && d.Pos == diags[i-1].Pos && d.Message == diags[i-1].Message {
			continue
		}
		kept = append(kept, d)
	}
	if jsonOut {
		rows := make([]jsonDiag, 0, len(kept))
		for _, d := range kept {
			posn := fset.Position(d.Pos)
			rows = append(rows, jsonDiag{
				File: posn.Filename, Line: posn.Line, Col: posn.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintf(os.Stderr, "eisrlint: %v\n", err)
		}
		return
	}
	for _, d := range kept {
		posn := fset.Position(d.Pos)
		if githubOut {
			// GitHub Actions annotation; '%' , '\r', '\n' must be escaped
			// per the workflow-command quoting rules.
			fmt.Printf("::error file=%s,line=%d,col=%d::%s\n",
				posn.Filename, posn.Line, posn.Column,
				ghEscape(fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)))
			continue
		}
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", posn, d.Analyzer, d.Message)
	}
}

// ghEscape applies GitHub's workflow-command data escaping.
func ghEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// vetConfig is the JSON the go command hands a -vettool per package
// (the x/tools unitchecker wire format).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs the suite on one package described by a vet .cfg file
// and returns the process exit code. Diagnostics go to stderr in the
// file:line: form the go command relays.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eisrlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "eisrlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The go command requires the facts file to exist even though the
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("eisrlint\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "eisrlint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "eisrlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if m, ok := cfg.ImportMap[path]; ok {
				path = m
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return gc.Import(path)
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "eisrlint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg := &analysis.Package{
		PkgPath: strings.TrimSuffix(cfg.ImportPath, "_test"),
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	diags := runSuite(pkg)
	printDiags(fset, diags)
	if len(diags) > 0 {
		return 2 // the go command treats a nonzero vet tool exit as findings
	}
	return 0
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
