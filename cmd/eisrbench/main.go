// Command eisrbench regenerates every table and figure of the paper's
// evaluation (§7) plus the in-text measurements and the design-choice
// ablations, printing paper-formatted tables.
//
// Usage:
//
//	eisrbench                 # run everything (quick sizes)
//	eisrbench -exp table3     # one experiment
//	eisrbench -full           # paper-scale parameters (slower)
//	eisrbench -list           # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/routerplugins/eisr/internal/bench"
)

var experiments = []string{
	"table1", "table2", "table3", "flowcache", "dagscale", "gates",
	"drrshare", "hfsc", "schedovh", "sched-scale", "telemetry",
	"parallel", "batch", "faults", "wire", "pathtrace", "fib", "fib-churn",
	"ablate-cache", "ablate-bmp", "ablate-collapse", "ablate-interdag",
}

func main() {
	exp := flag.String("exp", "all", "experiment id (or 'all')")
	full := flag.Bool("full", false, "paper-scale parameters (50k filters, 1000 reps)")
	seed := flag.Int64("seed", 1998, "random seed")
	workers := flag.Int("workers", 0, "max worker count for the parallel sweep (0 = 1,2,4)")
	schedFlows := flag.Int("sched-flows", 0, "sched-scale: cap the largest flow tier (0 = 1M explicit, 100k under -exp all)")
	list := flag.Bool("list", false, "list experiment ids")
	wireDaemon := flag.String("wire-daemon", "", "wire: drive a live eisrd — its ingress -link socket address (default: in-process topology)")
	wireSrc := flag.String("wire-src", "", "wire: sender socket bind address (default 127.0.0.1:0)")
	wireSink := flag.String("wire-sink", "", "wire: sink socket bind address; in daemon mode must match the daemon's egress link peer")
	wirePackets := flag.Int("wire-packets", 0, "wire: packet count (default 10000; 2000 under -exp all)")
	flag.Parse()

	if *list {
		for _, e := range experiments {
			fmt.Println(e)
		}
		return
	}
	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if run("table1") {
		ran = true
		fmt.Println(bench.RunTable1())
	}
	if run("table2") {
		ran = true
		counts := []int{16, 1000, 10000}
		if *full {
			counts = []int{16, 1000, 10000, 50000}
		}
		v4 := bench.RunTable2(*seed, counts, false)
		v6 := bench.RunTable2(*seed, counts, true)
		fmt.Println(bench.Table2Breakdown(false))
		fmt.Println(bench.Table2Breakdown(true))
		fmt.Println(bench.Table2Table(v4, v6))
	}
	if run("table3") {
		ran = true
		opts := bench.Table3Options{Reps: 50, PerFlow: 100}
		if *full {
			opts.Reps = 1000
		}
		rows, err := bench.RunTable3(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.Table3Table(rows))
		rows6, err := bench.RunTable3(bench.Table3Options{Reps: opts.Reps / 2, PerFlow: 100, IPv6: true})
		if err != nil {
			fatal(err)
		}
		t := bench.Table3Table(rows6)
		t.Title = "Table 3 (IPv6 variant, as measured in the paper)"
		fmt.Println(t)
	}
	if run("flowcache") {
		ran = true
		res, err := bench.RunFlowCache(*seed, 512, 200_000, 0.9, true)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FlowCacheTable(res))
	}
	if run("dagscale") {
		ran = true
		counts := []int{16, 64, 256, 1024, 4096}
		if *full {
			counts = append(counts, 16384, 50000)
		}
		fmt.Println(bench.DAGScaleTable(bench.RunDAGScale(*seed, counts)))
	}
	if run("gates") {
		ran = true
		fmt.Println(bench.GateScaleTable(bench.RunGateScale(8)))
	}
	if run("drrshare") {
		ran = true
		rows := bench.RunDRRShare([]float64{1, 2, 4}, 1000, 20000, 1e6, 10)
		fmt.Println(bench.DRRShareTable(rows))
	}
	if run("hfsc") {
		ran = true
		fmt.Println(bench.HFSCTable(bench.RunHFSCDecoupling(1e6)))
	}
	if run("schedovh") {
		ran = true
		n := 100_000
		if *full {
			n = 1_000_000
		}
		fmt.Println(bench.SchedOverheadTable(bench.RunSchedOverhead(n)))
	}
	if run("sched-scale") {
		ran = true
		tiers := []int{10_000, 100_000, 1_000_000}
		if *exp == "all" && *schedFlows == 0 && !*full {
			// The million-flow tier is explicit-opt-in territory: under
			// "all" stop at 100k so the whole-suite run stays quick.
			tiers = []int{10_000, 100_000}
		}
		if *schedFlows > 0 {
			capped := tiers[:0]
			for _, n := range tiers {
				if n <= *schedFlows {
					capped = append(capped, n)
				}
			}
			if len(capped) == 0 || capped[len(capped)-1] < *schedFlows {
				capped = append(capped, *schedFlows)
			}
			tiers = capped
		}
		fmt.Println(bench.SchedScaleTable(bench.RunSchedScale(bench.SchedScaleOptions{Tiers: tiers})))
	}
	if run("telemetry") {
		ran = true
		n := 30_000
		if *full {
			n = 300_000
		}
		res, err := bench.RunTelemetry(n)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.TelemetryTable(res))
	}
	if run("parallel") {
		ran = true
		opts := bench.ParallelOptions{}
		if *workers > 0 {
			for w := 1; w <= *workers; w *= 2 {
				opts.Workers = append(opts.Workers, w)
			}
		}
		if *full {
			opts.Flows, opts.PerFlow = 4096, 500
		}
		rows, err := bench.RunParallel(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.ParallelTable(rows))
	}
	if run("batch") {
		ran = true
		opts := bench.BatchSweepOptions{Wire: *exp == "batch"}
		if *full {
			opts.Flows, opts.PerFlow, opts.WirePackets = 4096, 500, 10_000
		}
		rows, err := bench.RunBatchSweep(opts)
		if err != nil {
			fatal(err)
		}
		w := opts.Workers
		if w <= 0 {
			w = 4
		}
		fmt.Println(bench.BatchTable(rows, w))
	}
	if run("faults") {
		ran = true
		opts := bench.FaultsOptions{}
		if *full {
			opts.Packets = 2_000_000
		}
		rows, faults, err := bench.RunFaults(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FaultsTable(rows, faults))
	}
	if run("wire") {
		ran = true
		opts := bench.WireOptions{
			Packets: *wirePackets, Daemon: *wireDaemon,
			SrcBind: *wireSrc, SinkBind: *wireSink,
		}
		if opts.Packets == 0 && *exp == "all" {
			opts.Packets = 2000
		}
		if *full && *wirePackets == 0 {
			opts.Packets = 100_000
		}
		res, err := bench.RunWire(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.WireTable(res))
		if res.Lost() > 0 {
			fatal(fmt.Errorf("wire: lost %d of %d packets", res.Lost(), res.Packets))
		}
	}
	if run("pathtrace") {
		ran = true
		opts := bench.PathTraceOptions{}
		if *exp == "all" {
			opts.Packets = 1000
		}
		if *full {
			opts.Packets = 20_000
		}
		res, err := bench.RunPathTrace(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.PathTraceTable(res))
		if res.BadSpans > 0 {
			fatal(fmt.Errorf("pathtrace: %d malformed spans", res.BadSpans))
		}
	}
	if run("fib") {
		ran = true
		opts := bench.FIBOptions{Seed: *seed}
		if *exp == "all" && !*full {
			// The million-prefix tier is explicit-opt-in territory
			// (`-exp fib` or -full), same policy as sched-scale.
			opts.Sizes = []int{10_000, 100_000}
		}
		rows, err := bench.RunFIB(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FIBTable(rows))
	}
	if run("fib-churn") {
		ran = true
		opts := bench.FIBChurnOptions{}
		if *exp == "all" && !*full {
			opts.Routes, opts.Updates, opts.Packets = 10_000, 2_000, 2_000
		}
		res, err := bench.RunFIBChurn(opts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.FIBChurnTable(res))
		if res.Lost() > 0 {
			fatal(fmt.Errorf("fib-churn: lost %d of %d packets", res.Lost(), res.Packets))
		}
	}
	if run("ablate-cache") {
		ran = true
		fmt.Println(bench.AblateCacheTable(bench.RunAblateCache(*seed, 512, 200_000, 0.9)))
	}
	if run("ablate-bmp") {
		ran = true
		n := 4096
		if *full {
			n = 50000
		}
		fmt.Println(bench.AblateBMPTable(bench.RunAblateBMP(*seed, n), n))
	}
	if run("ablate-interdag") {
		ran = true
		fmt.Println(bench.AblateInterDAGTable(bench.RunAblateInterDAG(*seed, 4, 1000), 4))
	}
	if run("ablate-collapse") {
		ran = true
		fmt.Println(bench.AblateCollapseTable(bench.RunAblateCollapse(*seed)))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eisrbench:", err)
	os.Exit(1)
}
