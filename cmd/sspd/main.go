// Command sspd runs the SSP daemon (§3.1): the state-setup protocol
// server that accepts reservation requests and installs the
// corresponding filters and bindings through the Router Plugin Library,
// maintaining them as refreshed soft state.
//
//	sspd -ctl 127.0.0.1:4242 -listen 127.0.0.1:4243
package main

import (
	"flag"
	"log"
	"net"

	"github.com/routerplugins/eisr/internal/ctl"
	"github.com/routerplugins/eisr/internal/sspd"
)

func main() {
	ctlAddr := flag.String("ctl", "127.0.0.1:4242", "eisrd control socket address")
	listen := flag.String("listen", "127.0.0.1:4243", "SSP listen address")
	flag.Parse()

	client, err := ctl.Dial("tcp", *ctlAddr)
	if err != nil {
		log.Fatalf("sspd: cannot reach eisrd: %v", err)
	}
	defer client.Close()

	d := sspd.New(client)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("sspd: listen: %v", err)
	}
	log.Printf("sspd: serving SSP on %s (router at %s)", ln.Addr(), *ctlAddr)
	if err := d.Serve(ln); err != nil {
		log.Fatalf("sspd: %v", err)
	}
}
