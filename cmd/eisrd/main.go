// Command eisrd runs the Extended Integrated Services Router: it
// assembles the core, interfaces, classifier and plugin registry, runs
// an optional boot configuration script (the paper's "configuration
// script during system initialization"), serves the control socket for
// pmgr and the daemons, and forwards packets until interrupted.
//
//	eisrd -ctl 127.0.0.1:4242 -ifaces 4 -config router.conf
//
// The configuration script holds pmgr commands, one per line:
//
//	load drr
//	create drr iface=1 quantum=1500
//	register drr drr0 filter='<129.*.*.*, *, TCP, *, *, *>' weight=4
//	route add 0.0.0.0/0 dev 1
//
// Interfaces can be backed by real sockets with -link (repeatable): each
// entry binds a local UDP socket for one interface and carries its
// traffic to a peer eisrd as UDP-encapsulated IP datagrams:
//
//	eisrd -ctl 127.0.0.1:4242 -link '0=127.0.0.1:9000,127.0.0.1:9100' \
//	      -link '1=127.0.0.1:9001,127.0.0.1:9101'
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"github.com/routerplugins/eisr"
	"github.com/routerplugins/eisr/internal/routefeed"
)

func main() {
	ctlAddr := flag.String("ctl", "127.0.0.1:4242", "control socket listen address")
	nIfaces := flag.Int("ifaces", 2, "number of simulated interfaces")
	bestEffort := flag.Bool("best-effort", false, "run the monolithic best-effort kernel (no plugins)")
	bmpKind := flag.String("bmp", "bspl", "BMP algorithm: linear|patricia|bspl|cpe")
	config := flag.String("config", "", "boot configuration script")
	verify := flag.Bool("verify-checksums", true, "validate IPv4 header checksums")
	routed := flag.Bool("routed", false, "run the distance-vector route daemon")
	originate := flag.String("originate", "", "comma-separated PREFIX@IFINDEX list the route daemon originates")
	metricsAddr := flag.String("metrics", "", "serve Prometheus /metrics and /debug/pprof on this address (enables telemetry)")
	traceBuf := flag.Int("trace-buffer", 0, "packet trace ring size (entries, 0 = default; needs -metrics)")
	traceSample := flag.Int("trace-sample", 1, "trace every Nth packet (needs -metrics)")
	routerID := flag.Uint("router-id", 0, "router id stamped into in-band path-trace hop records (needs -metrics)")
	pathSample := flag.Int("path-sample", 0, "give 1-in-N packets an in-band trace context at this router (0 = off; runtime-settable via 'pmgr pathtrace N'; needs -metrics)")
	workers := flag.Int("workers", 0, "forwarding workers (0 or 1 = single-threaded; >1 steers packets by flow hash)")
	faultPolicy := flag.String("fault-policy", "drop", "packet fate when a plugin dispatch panics: drop|forward")
	faultThreshold := flag.Int("fault-threshold", 0, "quarantine an instance after N faults in the window (0 = default 5; negative = never)")
	faultWindow := flag.Duration("fault-window", 0, "sliding window for -fault-threshold (0 = default 10s)")
	feedBatch := flag.Int("feed-batch", 0, "route-feed batch size: a live feed's pending updates flush into one snapshot at this count (0 = default 1024)")
	feedFlush := flag.Duration("feed-flush", 0, "route-feed timer flush interval for partial batches (0 = default 50ms)")
	var links linkFlags
	flag.Var(&links, "link", "back an interface with a UDP overlay link: IFINDEX=LOCAL,PEER (repeatable; PEER may be empty)")
	var routes stringFlags
	flag.Var(&routes, "route", "install a static route at boot: 'PREFIX dev N [via GW] [metric M]' (repeatable; all -route flags load as one batch)")
	var feeds stringFlags
	flag.Var(&feeds, "feed", "attach a route-feed source: file:PATH (full-table dump) or tcp:HOST:PORT (live line-protocol stream; repeatable)")
	flag.Parse()

	r, err := eisr.New(eisr.Options{
		BestEffort:      *bestEffort,
		BMP:             *bmpKind,
		VerifyChecksums: *verify,
		Telemetry:       *metricsAddr != "",
		TraceBuffer:     *traceBuf,
		TraceSample:     *traceSample,
		RouterID:        uint32(*routerID),
		PathSample:      *pathSample,
		Workers:         *workers,
		FaultPolicy:     *faultPolicy,
		FaultThreshold:  *faultThreshold,
		FaultWindow:     *faultWindow,
	})
	if err != nil {
		log.Fatalf("eisrd: %v", err)
	}
	for i := 0; i < *nIfaces; i++ {
		if _, err := r.AddInterface(int32(i), fmt.Sprintf("sim%d", i), ""); err != nil {
			log.Fatalf("eisrd: interface %d: %v", i, err)
		}
	}
	for _, lk := range links {
		link, err := r.AttachUDPLink(lk.iface, lk.local, lk.peer)
		if err != nil {
			log.Fatalf("eisrd: link %d: %v", lk.iface, err)
		}
		log.Printf("eisrd: interface %d wired: %s -> %q", lk.iface, link.LocalAddr(), lk.peer)
	}
	if len(routes) > 0 {
		if err := r.AddRoutes(routes); err != nil {
			log.Fatalf("eisrd: -route: %v", err)
		}
		log.Printf("eisrd: %d static routes loaded in one batch", len(routes))
	}
	if len(feeds) > 0 || *feedBatch > 0 || *feedFlush > 0 {
		// Enable the feed before -routed below so the route daemon's
		// churn is accounted through the same feed machinery.
		r.EnableFeed(routefeed.Options{BatchMax: *feedBatch, FlushEvery: *feedFlush})
		for _, spec := range feeds {
			if err := r.AttachFeed(spec); err != nil {
				log.Fatalf("eisrd: -feed: %v", err)
			}
			log.Printf("eisrd: route feed attached: %s", spec)
		}
	}
	if *config != "" {
		if err := runScript(r, *config); err != nil {
			log.Fatalf("eisrd: config: %v", err)
		}
	}

	ln, err := net.Listen("tcp", *ctlAddr)
	if err != nil {
		log.Fatalf("eisrd: control socket: %v", err)
	}
	go func() {
		if err := r.ServeControl(ln); err != nil {
			log.Printf("eisrd: control server stopped: %v", err)
		}
	}()
	log.Printf("eisrd: control socket on %s, %d interfaces, %d plugin modules available",
		ln.Addr(), *nIfaces, len(eisr.Modules()))

	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := r.Telemetry.WritePrometheus(w); err != nil {
				log.Printf("eisrd: /metrics: %v", err)
			}
		})
		// Readiness: 200 only while the router is serving (past Start,
		// not yet into Stop). Scripts poll this instead of sleeping.
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			// Status code only: probes (curl -f, CI scripts) read the
			// code, and a body write error has nowhere to surface.
			if r.Serving() {
				w.WriteHeader(http.StatusOK)
				return
			}
			w.WriteHeader(http.StatusServiceUnavailable)
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Addr: *metricsAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("eisrd: metrics server stopped: %v", err)
			}
		}()
		log.Printf("eisrd: telemetry on http://%s/metrics (pprof under /debug/pprof/)", *metricsAddr)
	}

	if *routed {
		d := r.EnableRouteDaemon()
		for _, spec := range strings.Split(*originate, ",") {
			if spec == "" {
				continue
			}
			prefix, ifStr, ok := strings.Cut(spec, "@")
			if !ok {
				log.Fatalf("eisrd: -originate entries are PREFIX@IFINDEX, got %q", spec)
			}
			idx, err := strconv.Atoi(ifStr)
			if err != nil {
				log.Fatalf("eisrd: bad interface in %q", spec)
			}
			if err := d.Originate(prefix, int32(idx)); err != nil {
				log.Fatalf("eisrd: originate %q: %v", spec, err)
			}
		}
		done := make(chan struct{})
		defer close(done)
		go d.Serve(done)
		log.Printf("eisrd: route daemon running")
	}

	r.Start()
	defer r.Stop()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("eisrd: shutting down; core stats: %+v", r.Core.Stats())
}

// stringFlags collects a repeatable string flag (-route, -feed).
type stringFlags []string

func (f *stringFlags) String() string { return strings.Join(*f, " ") }

func (f *stringFlags) Set(v string) error {
	*f = append(*f, v)
	return nil
}

// linkSpec is one parsed -link entry.
type linkSpec struct {
	iface int32
	local string
	peer  string
}

// linkFlags collects repeated -link IFINDEX=LOCAL,PEER flags.
type linkFlags []linkSpec

func (f *linkFlags) String() string {
	var parts []string
	for _, lk := range *f {
		parts = append(parts, fmt.Sprintf("%d=%s,%s", lk.iface, lk.local, lk.peer))
	}
	return strings.Join(parts, " ")
}

func (f *linkFlags) Set(v string) error {
	idxStr, rest, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want IFINDEX=LOCAL,PEER, got %q", v)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
	if err != nil {
		return fmt.Errorf("bad interface index in %q", v)
	}
	local, peer, _ := strings.Cut(rest, ",")
	local = strings.TrimSpace(local)
	if local == "" {
		return fmt.Errorf("want a local bind address in %q", v)
	}
	*f = append(*f, linkSpec{iface: int32(idx), local: local, peer: strings.TrimSpace(peer)})
	return nil
}

// runScript executes a boot configuration script through the same
// dispatch path the control socket uses.
func runScript(r *eisr.Router, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.RunConfigScript(f)
}
