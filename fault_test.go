package eisr

import (
	"encoding/json"
	"errors"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/ctl"
	"github.com/routerplugins/eisr/internal/pcu"
	"github.com/routerplugins/eisr/internal/pkt"
)

// newChaosRouter assembles a two-port router with a chaos instance
// bound at the options gate, returning the instance name and a sender
// that injects one UDP packet of the given flow.
func newChaosRouter(t *testing.T, opts Options, chaosArgs map[string]string) (*Router, string, func(t *testing.T, sport uint16) bool) {
	t.Helper()
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddInterface(0, "lan", "192.0.2.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddInterface(1, "wan", ""); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRoute("0.0.0.0/0 dev 1"); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadPlugin("chaos-options"); err != nil {
		t.Fatal(err)
	}
	name, err := r.CreateInstance("chaos-options", chaosArgs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Register("chaos-options", name, map[string]string{"filter": "*, *, *, *, *, *"}); err != nil {
		t.Fatal(err)
	}
	send := func(t *testing.T, sport uint16) bool {
		t.Helper()
		data, err := pkt.BuildUDP(pkt.UDPSpec{
			Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("20.0.0.1"),
			SrcPort: sport, DstPort: 9, Payload: []byte("t"),
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := pkt.NewPacket(data, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.Stamp = time.Now()
		return r.Core.ProcessOne(p)
	}
	return r, name, send
}

// chaosStats fetches the instance's call/fault counters through the
// plugin's control verb.
func chaosStats(t *testing.T, r *Router, name string) map[string]uint64 {
	t.Helper()
	reply, err := r.Message("chaos-options", name, "stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := reply.(map[string]uint64)
	if !ok {
		t.Fatalf("stats reply %T", reply)
	}
	return m
}

// A plugin that panics on every packet must not crash the router: with
// the drop policy the packet dies, the fault is recorded, and the
// router keeps serving.
func TestChaosPanicDropPolicy(t *testing.T) {
	r, name, send := newChaosRouter(t, Options{FaultThreshold: -1}, nil)
	for i := 0; i < 3; i++ {
		if send(t, uint16(1000+i)) {
			t.Fatalf("packet %d forwarded past a panicking gate under the drop policy", i)
		}
	}
	s := r.Core.Stats()
	if s.PluginFaults != 3 || s.Forwarded != 0 || s.Dropped != 3 || s.Degraded != 0 {
		t.Fatalf("stats = %+v", s)
	}
	rep := r.HealthReport()
	if len(rep) != 1 || rep[0].Instance != name || rep[0].Faults != 3 || rep[0].Quarantined {
		t.Fatalf("health = %+v", rep)
	}
	if rep[0].LastOrigin != "gate" || rep[0].LastPanic == "" {
		t.Fatalf("fault detail missing: %+v", rep[0])
	}
	if st := chaosStats(t, r, name); st["faults"] != 3 {
		t.Fatalf("chaos stats = %v", st)
	}
}

// Under the forward policy a faulted gate degrades the packet to the
// default path instead of dropping it.
func TestChaosPanicForwardPolicy(t *testing.T) {
	r, _, send := newChaosRouter(t, Options{FaultPolicy: "forward", FaultThreshold: -1}, nil)
	for i := 0; i < 3; i++ {
		if !send(t, uint16(1000+i)) {
			t.Fatalf("packet %d not forwarded under the forward policy", i)
		}
	}
	s := r.Core.Stats()
	if s.PluginFaults != 3 || s.Forwarded != 3 || s.Degraded != 3 || s.Dropped != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// Crossing the fault threshold quarantines the instance: its filters
// are unbound, its cached flows flushed, and traffic re-classifies to
// the default path — the router degrades instead of dying.
func TestQuarantineAfterThreshold(t *testing.T) {
	r, name, send := newChaosRouter(t, Options{FaultThreshold: 3}, nil)
	// Three faults on one flow — the flow cache binds the instance, so
	// the flush must be observable on this very flow afterwards.
	for i := 0; i < 3; i++ {
		if send(t, 1000) {
			t.Fatalf("packet %d forwarded before quarantine", i)
		}
	}
	rep := r.HealthReport()
	if len(rep) != 1 || !rep[0].Quarantined || rep[0].Faults != 3 {
		t.Fatalf("health after threshold = %+v", rep)
	}
	if !rep[0].Drained {
		t.Fatalf("no worker pool: quarantine should drain inline, got %+v", rep[0])
	}
	// The quarantined instance's flows were flushed: the same flow now
	// re-classifies to the default path and forwards.
	for i := 0; i < 3; i++ {
		if !send(t, 1000) {
			t.Fatalf("packet %d not forwarded after quarantine", i)
		}
	}
	s := r.Core.Stats()
	if s.PluginFaults != 3 || s.Forwarded != 3 || s.Dropped != 3 {
		t.Fatalf("stats = %+v", s)
	}
	// The instance took no more calls after quarantine.
	if st := chaosStats(t, r, name); st["calls"] != 3 {
		t.Fatalf("quarantined instance still dispatched: %v", st)
	}
	// Re-quarantining by hand reports the instance as already gone.
	if err := r.Quarantine("chaos-options", name); !errors.Is(err, pcu.ErrQuarantined) {
		t.Fatalf("double quarantine error = %v", err)
	}
}

// Operator-requested quarantine takes a healthy instance out of the
// data path without freeing it.
func TestManualQuarantine(t *testing.T) {
	r, name, send := newChaosRouter(t, Options{}, map[string]string{"mode": "none"})
	if !send(t, 1000) {
		t.Fatal("healthy chaos instance blocked traffic")
	}
	if st := chaosStats(t, r, name); st["calls"] != 1 {
		t.Fatalf("chaos stats = %v", st)
	}
	if err := r.Quarantine("chaos-options", name); err != nil {
		t.Fatal(err)
	}
	if !send(t, 1000) || !send(t, 2000) {
		t.Fatal("traffic stopped after manual quarantine")
	}
	if st := chaosStats(t, r, name); st["calls"] != 1 {
		t.Fatalf("quarantined instance still dispatched: %v", st)
	}
	rep := r.HealthReport()
	if len(rep) != 1 || !rep[0].Quarantined || !rep[0].Manual {
		t.Fatalf("health = %+v", rep)
	}
	// The instance can still be freed afterwards, clearing the ledger.
	if err := r.FreeInstance("chaos-options", name); err != nil {
		t.Fatal(err)
	}
	if rep := r.HealthReport(); len(rep) != 0 {
		t.Fatalf("ledger survives free-instance: %+v", rep)
	}
}

// A panic in a plugin's control callback fails the control request with
// the structured fault instead of crashing the router.
func TestControlPathPanicContained(t *testing.T) {
	r, name, send := newChaosRouter(t, Options{FaultThreshold: -1}, map[string]string{"mode": "none"})
	_, err := r.Message("chaos-options", name, "panic", nil)
	var flt *pcu.PluginFault
	if !errors.As(err, &flt) {
		t.Fatalf("control panic not converted: %v", err)
	}
	if flt.Origin != pcu.OriginControl || flt.Plugin != "chaos-options" {
		t.Fatalf("fault = %+v", flt)
	}
	// The router is still alive and forwarding.
	if !send(t, 1000) {
		t.Fatal("router dead after control-path panic")
	}
	rep := r.HealthReport()
	if len(rep) != 1 || rep[0].LastOrigin != "control" {
		t.Fatalf("health = %+v", rep)
	}
}

// Four goroutines hammer a panic-on-every-packet instance concurrently
// (run under -race by make race): every panic is contained, the
// instance is quarantined, and traffic keeps flowing afterwards.
func TestQuarantineConcurrentWorkers(t *testing.T) {
	r, name, _ := newChaosRouter(t, Options{Workers: 4, FlowShards: 8}, nil)
	const workers = 4
	const perWorker = 64
	var forwarded atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				data, err := pkt.BuildUDP(pkt.UDPSpec{
					Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("20.0.0.1"),
					SrcPort: uint16(1000 + w*perWorker + i), DstPort: 9, Payload: []byte("t"),
				})
				if err != nil {
					return
				}
				p, err := pkt.NewPacket(data, 0)
				if err != nil {
					return
				}
				p.Stamp = time.Now()
				if r.Core.Forward(p) {
					forwarded.Add(1)
				}
				r.Core.TxDrain(1, 16)
			}
		}(w)
	}
	wg.Wait()
	rep := r.HealthReport()
	if len(rep) != 1 || rep[0].Instance != name || !rep[0].Quarantined {
		t.Fatalf("health = %+v", rep)
	}
	if rep[0].Faults < uint64(pcu.DefaultFaultThreshold) {
		t.Fatalf("quarantined below threshold: %+v", rep[0])
	}
	// Once quarantined the remaining packets take the default path.
	if forwarded.Load() == 0 {
		t.Fatal("no packet forwarded after quarantine")
	}
	s := r.Core.Stats()
	if s.PluginFaults < uint64(pcu.DefaultFaultThreshold) || s.Forwarded == 0 {
		t.Fatalf("stats = %+v (forwarded %d)", s, forwarded.Load())
	}
}

// TestChaosSoak is the chaos-soak CI job: a panic-on-every-packet
// plugin under sustained concurrent load with the control socket live —
// the router must stay up, quarantine the instance, keep forwarding,
// and keep answering control requests throughout. Gated on
// EISR_CHAOS_SOAK=1 (it burns ~2s of wall time).
func TestChaosSoak(t *testing.T) {
	if os.Getenv("EISR_CHAOS_SOAK") == "" {
		t.Skip("set EISR_CHAOS_SOAK=1 to run the chaos soak")
	}
	r, name, _ := newChaosRouter(t, Options{Workers: 4, FlowShards: 8, Telemetry: true}, nil)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go r.ServeControl(ln)

	deadline := time.Now().Add(2 * time.Second)
	var wg sync.WaitGroup
	var forwarded, sent atomic.Uint64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				data, err := pkt.BuildUDP(pkt.UDPSpec{
					Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("20.0.0.1"),
					SrcPort: uint16(1 + (w*16384+i)%60000), DstPort: 9, Payload: []byte("t"),
				})
				if err != nil {
					return
				}
				p, err := pkt.NewPacket(data, 0)
				if err != nil {
					return
				}
				p.Stamp = time.Now()
				sent.Add(1)
				if r.Core.Forward(p) {
					forwarded.Add(1)
				}
				r.Core.TxDrain(1, 64)
			}
		}(w)
	}

	// Control-plane liveness probe throughout the soak.
	probes := 0
	c, err := ctl.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for time.Now().Before(deadline) {
		data, err := c.Do(&ctl.Request{Op: ctl.OpHealth})
		if err != nil {
			t.Fatalf("control socket died during soak (probe %d): %v", probes, err)
		}
		var rep []pcu.InstanceHealth
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("health payload: %v", err)
		}
		probes++
		time.Sleep(50 * time.Millisecond)
	}
	wg.Wait()

	rep := r.HealthReport()
	if len(rep) != 1 || rep[0].Instance != name || !rep[0].Quarantined {
		t.Fatalf("health after soak = %+v", rep)
	}
	s := r.Core.Stats()
	if s.PluginFaults == 0 || forwarded.Load() == 0 {
		t.Fatalf("soak stats = %+v (sent %d forwarded %d)", s, sent.Load(), forwarded.Load())
	}
	if probes < 10 {
		t.Fatalf("control plane answered only %d probes", probes)
	}
	t.Logf("soak: %d sent, %d forwarded, %d faults contained, %d control probes",
		sent.Load(), forwarded.Load(), s.PluginFaults, probes)
}

// The health and quarantine verbs round-trip the control socket (the
// pmgr path).
func TestHealthOverControlSocket(t *testing.T) {
	r, name, send := newChaosRouter(t, Options{FaultThreshold: -1}, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go r.ServeControl(ln)

	send(t, 1000)
	c, err := ctl.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	req, err := ctl.ParseCommand([]string{"health"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rep []pcu.InstanceHealth
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep) != 1 || rep[0].Instance != name || rep[0].Faults != 1 {
		t.Fatalf("health over ctl = %+v", rep)
	}

	req, err = ctl.ParseCommand([]string{"quarantine", "chaos-options", name})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(req); err != nil {
		t.Fatal(err)
	}
	if !send(t, 1000) {
		t.Fatal("traffic blocked after quarantine over ctl")
	}
	// Quarantining again errors over the wire.
	if _, err := c.Do(req); err == nil {
		t.Fatal("double quarantine accepted over ctl")
	}
}
