GO ?= go
BIN := $(CURDIR)/bin

.PHONY: all build test lint race vet check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# eisrlint standalone over every package (tests included).
lint:
	$(GO) run ./cmd/eisrlint ./...

# eisrlint through the go vet unitchecker protocol, plus stock vet.
vet: $(BIN)/eisrlint
	$(GO) vet ./...
	$(GO) vet -vettool=$(BIN)/eisrlint ./...

# Race-detector pass over the packages with concurrent kernel state:
# flow-table lookups and gate dispatch racing the PCU control path.
race:
	$(GO) test -race ./internal/aiu ./internal/pcu

check: build test lint vet race

$(BIN)/eisrlint: FORCE
	$(GO) build -o $(BIN)/eisrlint ./cmd/eisrlint

.PHONY: FORCE
FORCE:

clean:
	rm -rf $(BIN)
