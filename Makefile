GO ?= go
BIN := $(CURDIR)/bin

.PHONY: all build test lint race vet check bench-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# eisrlint standalone over every package (tests included).
lint:
	$(GO) run ./cmd/eisrlint ./...

# eisrlint through the go vet unitchecker protocol, plus stock vet.
vet: $(BIN)/eisrlint
	$(GO) vet ./...
	$(GO) vet -vettool=$(BIN)/eisrlint ./...

# Race-detector pass over the packages with concurrent kernel state:
# sharded flow-table lookups and gate dispatch racing the PCU control
# path, the parallel forwarding pool and epoch reclamation, metric
# registration/snapshot racing record calls, the fault barrier and
# quarantine path (root package), and the control server's
# connection-teardown bookkeeping.
race:
	$(GO) test -race . ./internal/aiu ./internal/pcu ./internal/ipcore ./internal/telemetry ./internal/ctl

# Overhead guards: the telemetry-off flow-cache hit path must stay
# allocation-free and the disabled record calls under 2ns per packet;
# the 4-worker cache-hit path must scale (skips below 4 cores).
bench-smoke:
	EISR_BENCH_SMOKE=1 $(GO) test -run BenchSmoke -count=1 -v ./internal/aiu ./internal/bench

check: build test lint vet race

$(BIN)/eisrlint: FORCE
	$(GO) build -o $(BIN)/eisrlint ./cmd/eisrlint

.PHONY: FORCE
FORCE:

clean:
	rm -rf $(BIN)
