GO ?= go
BIN := $(CURDIR)/bin

.PHONY: all build test lint race vet check bench-smoke wire-smoke fib-churn-smoke clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# eisrlint standalone over every package (tests included), with the
# per-analyzer findings/timing summary. Exit status is distinct per
# failure class: 0 clean, 1 findings, 2 load or usage error.
lint: $(BIN)/eisrlint
	$(BIN)/eisrlint -summary ./...

# eisrlint through the go vet unitchecker protocol, plus stock vet.
vet: $(BIN)/eisrlint
	$(GO) vet ./...
	$(GO) vet -vettool=$(BIN)/eisrlint ./...

# Race-detector pass over the packages with concurrent kernel state:
# sharded flow-table lookups and gate dispatch racing the PCU control
# path, the parallel forwarding pool and epoch reclamation, metric
# registration/snapshot racing record calls, the fault barrier and
# quarantine path plus the wire topology (root package), the control
# server's connection-teardown bookkeeping, the netio RX/TX goroutines
# racing forwarding workers and Stop, the routing table's lock-free
# lookups racing batched applies, the route-feed daemon's flush/sweep
# machinery racing its sources, and the analyzer suite (whose shared
# fixture loader is hit from parallel tests).
race:
	$(GO) test -race . ./internal/aiu ./internal/pcu ./internal/ipcore ./internal/telemetry ./internal/ctl ./internal/netio ./internal/routing ./internal/routefeed ./internal/analysis/...

# Overhead guards: the telemetry-off flow-cache hit path must stay
# allocation-free and the disabled record calls under 2ns per packet;
# the 4-worker cache-hit path must scale (skips below 4 cores); the
# netio wire RX and TX paths must stay allocation-free per packet; the
# path-trace origin check with sampling disabled must cost 0 allocs and
# < 2ns per packet; the Eiffel scheduler's per-packet cost must stay
# flat (<=2x) from 10k to 100k live flows with 0 allocs in steady state;
# FIB lookups at a million prefixes must stay allocation-free and an
# incremental single-route update must beat the full rebuild by >= 10x
# at 100k, with churn never costing packets on the wire.
bench-smoke:
	EISR_BENCH_SMOKE=1 $(GO) test -run BenchSmoke -count=1 -v ./internal/aiu ./internal/bench ./internal/netio ./internal/telemetry

# End-to-end wire smoke: boot an eisrd with UDP overlay links, push 10k
# datagrams through its gate/classifier path with eisrbench, verify
# zero unexplained drops, and exercise `pmgr links`.
wire-smoke:
	./scripts/wire_smoke.sh

# Full-table FIB smoke: load a 100k-prefix dump into a live eisrd
# through the route feed (one batch, one snapshot publication), check
# the pmgr feed/routes surfaces, journal records and eisr_fib_feed_*
# telemetry, then run 10k route updates under verified forwarding load
# with zero unexplained drops and bounded convergence.
fib-churn-smoke:
	./scripts/fib_churn_smoke.sh

check: build test lint vet race

$(BIN)/eisrlint: FORCE
	$(GO) build -o $(BIN)/eisrlint ./cmd/eisrlint

.PHONY: FORCE
FORCE:

clean:
	rm -rf $(BIN)
