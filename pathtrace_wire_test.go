package eisr

import (
	"net"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pkt"
)

// newTracedRouter assembles a telemetry-enabled router for the line
// topology: interface 0 "lan" (optionally owning a local address so
// routing terminates there), interface 1 "wan", default route out 1.
func newTracedRouter(t *testing.T, id uint32, sample int, localAddr string) *Router {
	t.Helper()
	r, err := New(Options{
		VerifyChecksums: true, Telemetry: true,
		RouterID: id, PathSample: sample,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddInterface(0, "lan", localAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddInterface(1, "wan", ""); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRoute("0.0.0.0/0 dev 1"); err != nil {
		t.Fatal(err)
	}
	return r
}

// traceProbe builds one probe datagram addressed to the terminating
// router's local address. One source port keeps every probe on one
// flow, so with sample=1 at the origin every probe carries a context.
func traceProbe(t testing.TB, seq uint32) []byte {
	t.Helper()
	payload := []byte{byte(seq >> 24), byte(seq >> 16), byte(seq >> 8), byte(seq)}
	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("30.0.0.1"),
		SrcPort: 4242, DstPort: 9, Payload: payload, TTL: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The acceptance topology for in-band path tracing: a three-router
// line A -> B -> C over real UDP sockets, contexts originated at A,
// spans folded at C on local delivery. Every span must carry exactly
// one hop record per router, in path order, with the per-hop
// residencies summing to the span total.
func TestPathTraceThreeRouterLine(t *testing.T) {
	a := newTracedRouter(t, 1, 1, "")
	b := newTracedRouter(t, 2, 0, "")
	c := newTracedRouter(t, 3, 0, "30.0.0.1")

	linkA, err := a.AttachUDPLink(1, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	linkBIn, err := b.AttachUDPLink(0, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	linkBOut, err := b.AttachUDPLink(1, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	linkCIn, err := c.AttachUDPLink(0, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := linkA.SetPeer(linkBIn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := linkBOut.SetPeer(linkCIn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Router{a, b, c} {
		r.Start()
		defer r.Stop()
	}

	const packets = 200
	pt := c.Telemetry.PathTracer()
	ingress := a.Interface(0)
	for i := 0; i < packets; i++ {
		// Window on the terminating router's span count so the wire
		// rings never overflow (a wire drop would lose that span).
		windowDeadline := time.Now().Add(200 * time.Millisecond)
		for uint64(i)-pt.Status().Spans >= 64 && time.Now().Before(windowDeadline) {
			time.Sleep(100 * time.Microsecond)
		}
		data := traceProbe(t, uint32(i))
		for {
			err := ingress.Inject(data)
			if err != netdev.ErrRingFull {
				if err != nil {
					t.Fatalf("inject %d: %v", i, err)
				}
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	deadline := time.Now().Add(30 * time.Second)
	for pt.Status().Spans < packets && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	folded := pt.Status().Spans
	if folded != packets {
		t.Fatalf("C folded %d/%d spans\nlinkA: %+v\nlinkB.in: %+v\nlinkB.out: %+v\nlinkC.in: %+v",
			folded, packets, linkA.Stats(), linkBIn.Stats(), linkBOut.Stats(), linkCIn.Stats())
	}
	if got := a.Telemetry.PathTracer().Status().Sampled; got != packets {
		t.Errorf("A originated %d contexts, want %d", got, packets)
	}

	spans := pt.SnapshotSpans(0)
	if len(spans) == 0 {
		t.Fatal("span ring exported nothing")
	}
	for _, s := range spans {
		if len(s.Hops) != 3 {
			t.Fatalf("span %s has %d hops, want exactly one per router: %+v",
				s.TraceID, len(s.Hops), s.Hops)
		}
		for i, want := range []struct {
			router  uint32
			verdict string
		}{{1, "forwarded"}, {2, "forwarded"}, {3, "delivered"}} {
			h := s.Hops[i]
			if h.Router != want.router || h.Verdict != want.verdict {
				t.Errorf("span %s hop %d = r%d/%s, want r%d/%s",
					s.TraceID, i, h.Router, h.Verdict, want.router, want.verdict)
			}
		}
		var sum uint64
		for _, h := range s.Hops {
			sum += uint64(h.TotalNs)
		}
		if sum != s.TotalNs {
			t.Errorf("span %s hop residencies sum to %dns, span total is %dns",
				s.TraceID, sum, s.TotalNs)
		}
	}

	// The per-hop-count latency histogram on C observed every span
	// under the hops="3" label.
	if m, ok := c.Telemetry.Find(`eisr_path_latency_ns{hops="3"}`); !ok || m.Hist == nil || m.Hist.Count != packets {
		t.Errorf("path latency histogram: ok=%v %+v", ok, m)
	}
}

// Untraced-peer interop: a legacy peer that has never heard of the
// trace header sends bare IP frames, and a future peer sends a header
// version this build does not know. Both must forward through a traced
// router unharmed — delivered at C, no spans minted for them.
func TestPathTraceUntracedPeerInterop(t *testing.T) {
	b := newTracedRouter(t, 2, 0, "")
	c := newTracedRouter(t, 3, 0, "30.0.0.1")

	linkBIn, err := b.AttachUDPLink(0, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	linkBOut, err := b.AttachUDPLink(1, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	linkCIn, err := c.AttachUDPLink(0, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := linkBOut.SetPeer(linkCIn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer b.Stop()
	c.Start()
	defer c.Stop()

	peer, err := net.Dial("udp", linkBIn.LocalAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	const packets = 50
	for i := 0; i < packets; i++ {
		// Bare IP, exactly as a pre-eisrpath build puts it on the wire.
		if _, err := peer.Write(traceProbe(t, uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	// And one frame claiming a header version from the future: the
	// whole header is skipped and the datagram delivered untraced.
	inner := traceProbe(t, packets)
	hdr := make([]byte, 16)
	hdr[0] = pkt.PathMagic
	hdr[1] = 99
	hdr[2], hdr[3] = 0, 16
	if _, err := peer.Write(append(hdr, inner...)); err != nil {
		t.Fatal(err)
	}

	const want = packets + 1
	deadline := time.Now().Add(30 * time.Second)
	for c.Core.Stats().Delivered < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := c.Core.Stats().Delivered; got != want {
		t.Fatalf("C delivered %d/%d untraced datagrams\nlinkB.in: %+v\nlinkC.in: %+v",
			got, want, linkBIn.Stats(), linkCIn.Stats())
	}
	for name, r := range map[string]*Router{"B": b, "C": c} {
		if n := r.Telemetry.PathTracer().Status().Spans; n != 0 {
			t.Errorf("router %s folded %d spans from untraced traffic", name, n)
		}
	}
	s := linkBIn.Stats()
	if s.RxDropMalformed != 0 {
		t.Errorf("legacy frames counted as malformed: %+v", s)
	}
}
