package eisr

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"github.com/routerplugins/eisr/internal/netdev"
	"github.com/routerplugins/eisr/internal/pkt"
)

// wireMagic marks test payloads so the sink can reject noise.
const wireMagic = 0xE15E0001

// newWireRouter assembles a plugin-mode router with two small-MTU
// interfaces (so link buffer pools stay modest under -race) and a
// default route out interface 1.
func newWireRouter(t *testing.T, workers int) *Router {
	t.Helper()
	r, err := New(Options{VerifyChecksums: true, Telemetry: true, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for idx, name := range []string{"lan", "wan"} {
		ifc := netdev.NewInterface(int32(idx), netdev.Config{Name: name, MTU: 1500})
		r.Core.AddInterface(ifc)
	}
	if err := r.AddRoute("0.0.0.0/0 dev 1"); err != nil {
		t.Fatal(err)
	}
	return r
}

// wirePayload builds the UDP datagram for one sequence number. A few
// distinct source ports spread the traffic over several flows so the
// classifier, flow cache, and (with workers) flow steering all engage.
func wirePayload(t testing.TB, seq uint32) []byte {
	t.Helper()
	payload := make([]byte, 8)
	binary.BigEndian.PutUint32(payload, wireMagic)
	binary.BigEndian.PutUint32(payload[4:], seq)
	data, err := pkt.BuildUDP(pkt.UDPSpec{
		Src: pkt.MustParseAddr("10.0.0.1"), Dst: pkt.MustParseAddr("20.0.0.2"),
		SrcPort: uint16(1000 + seq%8), DstPort: 9, Payload: payload, TTL: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runWireTopology drives the end-to-end wire path: packets injected on
// router A traverse A's gate/classifier path (a drr instance bound
// match-all at the sched gate), leave A on a netio UDP link, arrive at
// router B over a real loopback socket, are forwarded by B, and exit on
// a second UDP link to a test sink that verifies every payload.
func runWireTopology(t *testing.T, workers, packets int) {
	a := newWireRouter(t, workers)
	b := newWireRouter(t, workers)

	// The gate plugin on A: drr at the sched gate, match-all filter.
	if err := a.LoadPlugin("drr"); err != nil {
		t.Fatal(err)
	}
	inst, err := a.CreateInstance("drr", map[string]string{"iface": "1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Register("drr", inst, map[string]string{"filter": "*, *, *, *, *, *", "weight": "2"}); err != nil {
		t.Fatal(err)
	}

	// Wire: A.wan -> B.lan -> (B forwards) -> B.wan -> sink socket.
	linkA, err := a.AttachUDPLink(1, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	linkBIn, err := b.AttachUDPLink(0, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	linkBOut, err := b.AttachUDPLink(1, "127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	if err := linkA.SetPeer(linkBIn.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	if err := linkBOut.SetPeer(sink.LocalAddr().String()); err != nil {
		t.Fatal(err)
	}

	a.Start()
	defer a.Stop()
	b.Start()
	defer b.Stop()

	// The sink: count and verify every delivered payload.
	var received atomic.Int64
	seen := make([]atomic.Bool, packets)
	sinkErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 2048)
		for {
			sink.SetReadDeadline(time.Now().Add(10 * time.Second))
			n, _, err := sink.ReadFromUDP(buf)
			if err != nil {
				return // deadline or closed: the main goroutine decides
			}
			h, err := pkt.ParseIPv4(buf[:n])
			if err != nil {
				sinkErr <- fmt.Errorf("sink got a non-IP datagram: %v", err)
				return
			}
			body := buf[h.HeaderLen()+pkt.UDPHeaderLen : h.TotalLen]
			if len(body) != 8 || binary.BigEndian.Uint32(body) != wireMagic {
				sinkErr <- fmt.Errorf("sink payload corrupted: % x", body)
				return
			}
			seq := binary.BigEndian.Uint32(body[4:])
			if seq >= uint32(packets) {
				sinkErr <- fmt.Errorf("sink got out-of-range seq %d", seq)
				return
			}
			if seen[seq].Swap(true) {
				continue // duplicate (possible under retry), not an error
			}
			received.Add(1)
		}
	}()

	// The source: windowed injection into A's ingress ring, so bursts
	// never outrun the 512-slot rings anywhere downstream.
	const window = 256
	ingress := a.Interface(0)
	for i := 0; i < packets; i++ {
		for int64(i)-received.Load() >= window {
			time.Sleep(100 * time.Microsecond)
		}
		data := wirePayload(t, uint32(i))
		for {
			err := ingress.Inject(data)
			if err == nil {
				break
			}
			if err != netdev.ErrRingFull {
				t.Fatalf("inject %d: %v", i, err)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	deadline := time.Now().Add(60 * time.Second)
	for received.Load() < int64(packets) && time.Now().Before(deadline) {
		select {
		case err := <-sinkErr:
			t.Fatal(err)
		default:
		}
		time.Sleep(time.Millisecond)
	}
	if got := received.Load(); got != int64(packets) {
		t.Fatalf("sink got %d/%d packets\nlinkA: %+v\nlinkB.in: %+v\nlinkB.out: %+v\nA core: %+v\nB core: %+v",
			got, packets, linkA.Stats(), linkBIn.Stats(), linkBOut.Stats(),
			a.Core.Stats(), b.Core.Stats())
	}

	// Zero unexplained drops anywhere on the path.
	for name, s := range map[string]netdev.LinkStats{
		"linkA": linkA.Stats(), "linkB.in": linkBIn.Stats(), "linkB.out": linkBOut.Stats(),
	} {
		if s.RxDropRing+s.RxDropTooBig+s.RxDropMalformed+s.TxDropRing+s.TxErrors != 0 {
			t.Errorf("%s dropped wire packets: %+v", name, s)
		}
	}

	// The packets went through A's full gate/classifier path: the sched
	// gate dispatched every one and the flow cache engaged.
	rep := a.StatsReport()
	var schedDispatch uint64
	for _, g := range rep.Gates {
		if g.Gate == "sched" {
			schedDispatch = g.Dispatch
		}
	}
	if schedDispatch < uint64(packets) {
		t.Errorf("sched gate dispatched %d packets, want >= %d", schedDispatch, packets)
	}
	if rep.FlowCache == nil || rep.FlowCache.Hits == 0 {
		t.Errorf("flow cache never hit: %+v", rep.FlowCache)
	}
	// And the wire shows up in the operator's link report.
	links := rep.Links
	if len(links) != 1 || links[0].Stats.TxPackets < uint64(packets) {
		t.Errorf("links report: %+v", links)
	}
}

// The acceptance-criteria topology: >= 10k UDP-encapsulated packets
// across two routers over real sockets, zero unexplained drops.
func TestWireTwoRouterTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-packet wire exchange")
	}
	runWireTopology(t, 0, 10000)
}

// The same topology with the parallel forwarding engine on — run under
// -race by `make race` (this package is in the race list).
func TestWireTwoRouterTopologyWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("wire exchange with worker pool")
	}
	runWireTopology(t, 4, 3000)
}
