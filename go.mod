module github.com/routerplugins/eisr

go 1.24
